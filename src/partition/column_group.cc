#include "partition/column_group.h"

#include <algorithm>

#include "common/logging.h"

namespace vero {

void ColumnGroup::AppendBlock(ColumnGroupBlock block) {
  VERO_CHECK_EQ(block.row_ptr.front(), 0u);
  VERO_CHECK_EQ(block.row_ptr.back(), block.features.size());
  VERO_CHECK_EQ(block.features.size(), block.bins.size());
  VERO_CHECK_EQ(block.row_offset, num_instances_)
      << "blocks must tile the instance space contiguously";
  num_instances_ += block.num_rows();
  block_offsets_.push_back(block.row_offset);
  blocks_.push_back(std::move(block));
}

void ColumnGroup::MergeBlocks(size_t max_blocks) {
  if (blocks_.size() <= max_blocks || blocks_.empty()) return;
  max_blocks = std::max<size_t>(max_blocks, 1);
  // Greedily coalesce runs of consecutive blocks into ceil(n/max) groups of
  // near-equal count.
  const size_t n = blocks_.size();
  std::vector<ColumnGroupBlock> merged;
  std::vector<InstanceId> offsets;
  merged.reserve(max_blocks);
  size_t begin = 0;
  for (size_t g = 0; g < max_blocks && begin < n; ++g) {
    const size_t remaining_groups = max_blocks - g;
    const size_t take = (n - begin + remaining_groups - 1) / remaining_groups;
    ColumnGroupBlock out;
    out.row_offset = blocks_[begin].row_offset;
    uint64_t total_entries = 0;
    uint64_t total_rows = 0;
    for (size_t b = begin; b < begin + take; ++b) {
      total_entries += blocks_[b].num_entries();
      total_rows += blocks_[b].num_rows();
    }
    out.row_ptr.reserve(total_rows + 1);
    out.features.reserve(total_entries);
    out.bins.reserve(total_entries);
    for (size_t b = begin; b < begin + take; ++b) {
      const ColumnGroupBlock& src = blocks_[b];
      const uint32_t base = out.row_ptr.back();
      for (size_t r = 1; r < src.row_ptr.size(); ++r) {
        out.row_ptr.push_back(base + src.row_ptr[r]);
      }
      out.features.insert(out.features.end(), src.features.begin(),
                          src.features.end());
      out.bins.insert(out.bins.end(), src.bins.begin(), src.bins.end());
    }
    offsets.push_back(out.row_offset);
    merged.push_back(std::move(out));
    begin += take;
  }
  blocks_ = std::move(merged);
  block_offsets_ = std::move(offsets);
}

uint64_t ColumnGroup::num_entries() const {
  uint64_t total = 0;
  for (const auto& b : blocks_) total += b.num_entries();
  return total;
}

std::pair<size_t, uint32_t> ColumnGroup::Locate(InstanceId instance) const {
  VERO_DCHECK_LT(instance, num_instances_);
  // Phase 1: binary-search the block.
  const auto it = std::upper_bound(block_offsets_.begin(),
                                   block_offsets_.end(), instance);
  const size_t b = static_cast<size_t>(it - block_offsets_.begin()) - 1;
  // Phase 2: offset subtraction gives the row inside the block.
  return {b, instance - blocks_[b].row_offset};
}

std::span<const uint32_t> ColumnGroup::RowFeatures(InstanceId instance) const {
  const auto [b, r] = Locate(instance);
  const ColumnGroupBlock& blk = blocks_[b];
  return {blk.features.data() + blk.row_ptr[r],
          static_cast<size_t>(blk.row_ptr[r + 1] - blk.row_ptr[r])};
}

std::span<const BinId> ColumnGroup::RowBins(InstanceId instance) const {
  const auto [b, r] = Locate(instance);
  const ColumnGroupBlock& blk = blocks_[b];
  return {blk.bins.data() + blk.row_ptr[r],
          static_cast<size_t>(blk.row_ptr[r + 1] - blk.row_ptr[r])};
}

std::optional<BinId> ColumnGroup::FindBin(InstanceId instance,
                                          uint32_t local_feature) const {
  const auto [b, r] = Locate(instance);
  const ColumnGroupBlock& blk = blocks_[b];
  const uint32_t* begin = blk.features.data() + blk.row_ptr[r];
  const uint32_t* end = blk.features.data() + blk.row_ptr[r + 1];
  const uint32_t* it = std::lower_bound(begin, end, local_feature);
  if (it == end || *it != local_feature) return std::nullopt;
  return blk.bins[blk.row_ptr[r] + (it - begin)];
}

uint64_t ColumnGroup::MemoryBytes() const {
  uint64_t total = block_offsets_.capacity() * sizeof(InstanceId);
  for (const auto& b : blocks_) {
    total += b.row_ptr.capacity() * sizeof(uint32_t) +
             b.features.capacity() * sizeof(uint32_t) +
             b.bins.capacity() * sizeof(BinId);
  }
  return total;
}

}  // namespace vero
