#ifndef VERO_PARTITION_TRANSFORM_H_
#define VERO_PARTITION_TRANSFORM_H_

#include <cstdint>
#include <vector>

#include "cluster/communicator.h"
#include "data/dataset.h"
#include "partition/column_group.h"
#include "partition/column_grouping.h"
#include "sketch/candidate_splits.h"

namespace vero {

/// Wire encoding used when repartitioning column groups (step 4 of §4.2.1).
/// The three variants reproduce Table 5's ablation.
enum class TransformEncoding {
  /// Original 12-byte key-value pairs (4-byte feature id + 8-byte double
  /// value), one framed message per instance row.
  kNaive,
  /// Feature ids re-encoded inside the destination group with ceil(log2 p)
  /// bytes and values replaced by ceil(log2 q)-byte histogram bin indexes;
  /// still one framed message per row.
  kCompressed,
  /// Compressed encoding, additionally blockified: one message per
  /// (source, destination) pair containing three flat arrays, eliminating
  /// the per-row object overhead (Figure 9).
  kBlockified,
};

const char* TransformEncodingToString(TransformEncoding e);

/// Options for the horizontal-to-vertical transformation.
struct TransformOptions {
  uint32_t num_candidate_splits = 20;
  uint32_t sketch_entries = 256;
  ColumnGroupingStrategy grouping = ColumnGroupingStrategy::kGreedyBalance;
  TransformEncoding encoding = TransformEncoding::kBlockified;
  /// Block-merge target after repartition (§4.2.3 reports < 5 in practice).
  size_t max_blocks = 5;
  /// Recovery path: a candidate-split table restored from a checkpoint.
  /// When set, HorizontalToVertical skips the sketch pipeline (steps 1-2)
  /// and bins against this table, so recovered trees stay consistent with
  /// the checkpointed forest. Not owned; must outlive the call.
  const CandidateSplits* precomputed_splits = nullptr;
};

/// Cost breakdown of one worker's transformation, mirroring Table 5.
struct TransformStats {
  /// Steps 1-2: sketch building, merging, split generation (CPU).
  double sketch_seconds = 0.0;
  /// Step 3: column grouping + encoding (CPU).
  double encode_seconds = 0.0;
  /// Step 4: decode of received groups (CPU).
  double decode_seconds = 0.0;
  /// Simulated network seconds across all transform steps.
  double sim_comm_seconds = 0.0;
  /// Simulated network seconds of the column-group repartition alone
  /// (step 4's all-to-all) — the quantity Table 5's encoding ablation
  /// varies.
  double repartition_sim_seconds = 0.0;
  /// Simulated network seconds of the label broadcast alone (step 5).
  double label_broadcast_sim_seconds = 0.0;
  /// Bytes this worker sent during the column-group repartition (step 4).
  uint64_t repartition_bytes_sent = 0;
};

/// A worker's dataset after vertical repartitioning: every instance, the
/// worker's feature subset, quantized, plus the global metadata every
/// worker shares.
struct VerticalShard {
  /// Candidate splits for ALL features (broadcast in step 2).
  CandidateSplits splits;
  /// Owning worker of each global feature.
  std::vector<int> feature_owner;
  /// Global ids of the features owned here, ascending; local feature id ==
  /// index into this vector.
  std::vector<FeatureId> owned_features;
  /// Row-stored blocks over (all instances) x (owned features).
  ColumnGroup data;
  /// All instance labels (broadcast in step 5).
  std::vector<float> labels;
  uint32_t num_instances = 0;
  /// Global feature count D.
  uint32_t num_features = 0;
  TransformStats stats;
};

/// Steps 1-2 of the transformation, shared with horizontal trainers: builds
/// local per-feature quantile sketches, repartitions + merges them, proposes
/// candidate splits, and leaves the full CandidateSplits on every worker.
/// `feature_counts` (optional) receives the global nonzero count per feature
/// (the load-balance signal of §4.2.3). SPMD: call from every worker.
CandidateSplits BuildDistributedCandidateSplits(
    WorkerContext& ctx, const Dataset& shard, uint32_t q,
    uint32_t sketch_entries, std::vector<uint64_t>* feature_counts,
    double* sketch_seconds = nullptr);

/// The full 5-step horizontal-to-vertical transformation (§4.2.1). Each
/// worker passes its horizontal shard (a contiguous row range, rank order)
/// and receives its vertical shard. SPMD: call from every worker.
VerticalShard HorizontalToVertical(WorkerContext& ctx, const Dataset& shard,
                                   const TransformOptions& options);

/// Helper: the contiguous row range [begin, end) of `rank`'s horizontal
/// shard for an N-instance dataset over W workers.
std::pair<uint32_t, uint32_t> HorizontalRange(uint32_t num_instances,
                                              int world_size, int rank);

}  // namespace vero

#endif  // VERO_PARTITION_TRANSFORM_H_
