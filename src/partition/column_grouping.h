#ifndef VERO_PARTITION_COLUMN_GROUPING_H_
#define VERO_PARTITION_COLUMN_GROUPING_H_

#include <cstdint>
#include <vector>

#include "data/types.h"

namespace vero {

/// Strategy for assigning features to workers under vertical partitioning
/// (§4.2.3 discusses why naive strategies cause stragglers).
enum class ColumnGroupingStrategy {
  /// Greedy longest-processing-time balancing of per-feature nonzero counts
  /// (the paper's choice; near-optimal for the NP-hard balance problem).
  kGreedyBalance,
  /// feature -> feature % W.
  kRoundRobin,
  /// Contiguous ranges of equal feature count.
  kRange,
};

const char* ColumnGroupingStrategyToString(ColumnGroupingStrategy s);

/// Assigns each feature to one of `num_groups` groups. `feature_costs[f]`
/// is the number of key-value pairs of feature f (its nonzero count, read
/// off the global quantile sketches in the real pipeline).
/// Returns owner group per feature.
std::vector<int> AssignFeatureGroups(const std::vector<uint64_t>& feature_costs,
                                     int num_groups,
                                     ColumnGroupingStrategy strategy);

/// Total cost per group under an assignment (for balance diagnostics).
std::vector<uint64_t> GroupLoads(const std::vector<uint64_t>& feature_costs,
                                 const std::vector<int>& owner,
                                 int num_groups);

/// max(load) / mean(load): 1.0 is perfect balance.
double LoadImbalance(const std::vector<uint64_t>& loads);

}  // namespace vero

#endif  // VERO_PARTITION_COLUMN_GROUPING_H_
