#include "partition/transform.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "common/serialize.h"
#include "common/timer.h"
#include "obs/trace.h"
#include "sketch/quantile_summary.h"

namespace vero {
namespace {

// Emulated per-row serialization overhead (object headers etc.) charged to
// the non-blockified encodings; blockify exists precisely to amortize this
// across whole arrays (§4.2.3, Table 5).
constexpr uint32_t kPerRowObjectOverhead = 16;

// Bytes needed to address values in [0, n): the dlog(p) / dlog(q) encoding
// of §4.2.1 step 3.
uint32_t BytesForRange(uint64_t n) {
  uint32_t bits = 1;
  while ((uint64_t{1} << bits) < n && bits < 63) ++bits;
  return (bits + 7) / 8;
}

void WritePacked(ByteWriter* writer, uint64_t value, uint32_t width) {
  for (uint32_t b = 0; b < width; ++b) {
    writer->WriteU8(static_cast<uint8_t>(value >> (8 * b)));
  }
}

uint64_t ReadPacked(ByteReader* reader, uint32_t width) {
  uint64_t value = 0;
  for (uint32_t b = 0; b < width; ++b) {
    uint8_t byte = 0;
    VERO_CHECK_OK(reader->ReadU8(&byte));
    value |= static_cast<uint64_t>(byte) << (8 * b);
  }
  return value;
}

}  // namespace

const char* TransformEncodingToString(TransformEncoding e) {
  switch (e) {
    case TransformEncoding::kNaive:
      return "naive";
    case TransformEncoding::kCompressed:
      return "compressed";
    case TransformEncoding::kBlockified:
      return "blockified";
  }
  return "?";
}

std::pair<uint32_t, uint32_t> HorizontalRange(uint32_t num_instances,
                                              int world_size, int rank) {
  const uint64_t n = num_instances;
  const uint32_t begin = static_cast<uint32_t>(n * rank / world_size);
  const uint32_t end = static_cast<uint32_t>(n * (rank + 1) / world_size);
  return {begin, end};
}

CandidateSplits BuildDistributedCandidateSplits(
    WorkerContext& ctx, const Dataset& shard, uint32_t q,
    uint32_t sketch_entries, std::vector<uint64_t>* feature_counts,
    double* sketch_seconds) {
  const int w = ctx.world_size();
  const int rank = ctx.rank();
  const uint32_t d = shard.num_features();
  ThreadCpuTimer cpu;
  // Setup-pipeline span (closed on return); tree/layer stay -1 so round
  // accounting is unaffected. PhaseSpan measures whether or not a trace
  // buffer is attached, keeping accounting identical in both modes.
  obs::PhaseSpan sketch_span(ctx.trace_buffer(), "sketch-build",
                             &ctx.stats().sim_seconds);

  // Step 1a: local per-feature sketches from this worker's rows.
  std::vector<QuantileSketch> sketches(d, QuantileSketch(sketch_entries));
  const CsrMatrix& m = shard.matrix();
  const auto& features = m.features();
  const auto& values = m.values();
  for (size_t k = 0; k < features.size(); ++k) {
    sketches[features[k]].Add(values[k]);
  }

  // Step 1b: repartition sketches so feature f's local sketches meet on
  // worker f % W.
  std::vector<std::vector<uint8_t>> to_dest(w);
  {
    std::vector<ByteWriter> writers(w);
    for (uint32_t f = 0; f < d; ++f) {
      const QuantileSummary& summary = sketches[f].Finalize();
      if (summary.empty()) continue;
      ByteWriter& writer = writers[f % w];
      writer.WriteU32(f);
      summary.SerializeTo(&writer);
    }
    for (int g = 0; g < w; ++g) to_dest[g] = writers[g].TakeData();
  }
  sketches.clear();
  sketches.shrink_to_fit();

  cpu.Stop();
  std::vector<std::vector<uint8_t>> from_src;
  VERO_COMM_OK(ctx.AllToAll(std::move(to_dest), &from_src));
  cpu.Resume();

  // Step 1c: merge local sketches of each owned feature into global ones.
  std::vector<QuantileSummary> merged(d);
  for (int src = 0; src < w; ++src) {
    ByteReader reader(from_src[src]);
    while (!reader.AtEnd()) {
      uint32_t f = 0;
      VERO_CHECK_OK(reader.ReadU32(&f));
      VERO_CHECK_EQ(static_cast<int>(f % w), rank);
      QuantileSummary summary;
      VERO_CHECK_OK(QuantileSummary::Deserialize(&reader, &summary));
      merged[f] = merged[f].Merge(summary);
    }
  }

  // Step 2a: candidate splits for owned features.
  ByteWriter owned_writer;
  for (uint32_t f = rank; f < d; f += w) {
    if (merged[f].empty()) continue;
    merged[f] = merged[f].Prune(sketch_entries);
    const std::vector<float> splits = merged[f].ProposeSplits(q);
    owned_writer.WriteU32(f);
    owned_writer.WriteU64(
        static_cast<uint64_t>(merged[f].total_weight() + 0.5));
    owned_writer.WriteVector(splits);
  }

  // Step 2b: master collects and broadcasts the full split table (plus the
  // per-feature counts that drive load-balanced grouping).
  cpu.Stop();
  std::vector<std::vector<uint8_t>> gathered;
  VERO_COMM_OK(ctx.Gather(owned_writer.data(), /*root=*/0, &gathered));
  cpu.Resume();

  std::vector<uint8_t> full_table;
  if (rank == 0) {
    std::vector<std::vector<float>> all_splits(d);
    std::vector<uint64_t> counts(d, 0);
    for (const auto& buf : gathered) {
      ByteReader reader(buf);
      while (!reader.AtEnd()) {
        uint32_t f = 0;
        uint64_t count = 0;
        VERO_CHECK_OK(reader.ReadU32(&f));
        VERO_CHECK_OK(reader.ReadU64(&count));
        VERO_CHECK_OK(reader.ReadVector(&all_splits[f]));
        counts[f] = count;
      }
    }
    CandidateSplits splits(q, std::move(all_splits));
    ByteWriter writer;
    splits.SerializeTo(&writer);
    writer.WriteVector(counts);
    full_table = writer.TakeData();
  }
  cpu.Stop();
  VERO_COMM_OK(ctx.Broadcast(&full_table, /*root=*/0));
  cpu.Resume();

  ByteReader reader(full_table);
  CandidateSplits splits;
  VERO_CHECK_OK(CandidateSplits::Deserialize(&reader, &splits));
  std::vector<uint64_t> counts;
  VERO_CHECK_OK(reader.ReadVector(&counts));
  if (feature_counts != nullptr) *feature_counts = std::move(counts);
  cpu.Stop();
  if (sketch_seconds != nullptr) *sketch_seconds = cpu.Seconds();
  return splits;
}

VerticalShard HorizontalToVertical(WorkerContext& ctx, const Dataset& shard,
                                   const TransformOptions& options) {
  const int w = ctx.world_size();
  const int rank = ctx.rank();
  const uint32_t d = shard.num_features();
  VerticalShard result;
  result.num_features = d;
  const CommStats comm_before = ctx.stats();

  // Row offsets of every worker's shard (tiny exchange so each worker can
  // place received blocks in global instance space).
  std::vector<uint32_t> shard_rows(w, 0);
  {
    ByteWriter writer;
    writer.WriteU32(shard.num_instances());
    std::vector<std::vector<uint8_t>> all;
    VERO_COMM_OK(ctx.AllGather(writer.data(), &all));
    for (int r = 0; r < w; ++r) {
      ByteReader reader(all[r]);
      VERO_CHECK_OK(reader.ReadU32(&shard_rows[r]));
    }
  }
  std::vector<uint32_t> row_offsets(w + 1, 0);
  for (int r = 0; r < w; ++r) row_offsets[r + 1] = row_offsets[r] + shard_rows[r];
  result.num_instances = row_offsets[w];

  // Steps 1-2: global candidate splits + per-feature counts. A checkpoint
  // recovery supplies the split table directly; only the per-feature nonzero
  // counts (the grouping signal) then need a small exchange.
  std::vector<uint64_t> feature_counts;
  if (options.precomputed_splits != nullptr) {
    result.splits = *options.precomputed_splits;
    std::vector<double> counts(d, 0.0);
    const CsrMatrix& local = shard.matrix();
    for (InstanceId i = 0; i < shard.num_instances(); ++i) {
      for (FeatureId f : local.RowFeatures(i)) counts[f] += 1.0;
    }
    VERO_COMM_OK(ctx.AllReduceSum(counts));
    feature_counts.resize(d);
    for (uint32_t f = 0; f < d; ++f) {
      feature_counts[f] = static_cast<uint64_t>(counts[f] + 0.5);
    }
  } else {
    result.splits = BuildDistributedCandidateSplits(
        ctx, shard, options.num_candidate_splits, options.sketch_entries,
        &feature_counts, &result.stats.sketch_seconds);
  }

  ThreadCpuTimer cpu;
  obs::TraceBuffer* tb = ctx.trace_buffer();
  const double* sim_clock = &ctx.stats().sim_seconds;
  obs::PhaseSpan encode_span(tb, "transform-encode", sim_clock);

  // Step 3a: column grouping (deterministic given the gathered counts, so
  // every worker computes the same assignment locally).
  result.feature_owner =
      AssignFeatureGroups(feature_counts, w, options.grouping);
  std::vector<uint32_t> local_id_of(d, 0);
  std::vector<uint32_t> dest_feature_count(w, 0);
  for (uint32_t f = 0; f < d; ++f) {
    local_id_of[f] = dest_feature_count[result.feature_owner[f]]++;
    if (result.feature_owner[f] == rank) result.owned_features.push_back(f);
  }
  const uint32_t bin_bytes = BytesForRange(options.num_candidate_splits);

  // Step 3b: re-encode local rows into per-destination column groups.
  const CsrMatrix& m = shard.matrix();
  std::vector<std::vector<uint8_t>> to_dest(w);
  {
    std::vector<ByteWriter> writers(w);
    const uint32_t rows = shard.num_instances();
    for (int g = 0; g < w; ++g) writers[g].WriteU32(rows);

    if (options.encoding == TransformEncoding::kBlockified) {
      // Three flat arrays per destination: row lengths, features, bins.
      std::vector<std::vector<uint32_t>> lens(w);
      std::vector<std::vector<uint8_t>> payload(w);
      for (int g = 0; g < w; ++g) lens[g].assign(rows, 0);
      std::vector<ByteWriter> entry_writers(w);
      for (InstanceId i = 0; i < rows; ++i) {
        auto row_features = m.RowFeatures(i);
        auto row_values = m.RowValues(i);
        for (size_t k = 0; k < row_features.size(); ++k) {
          const FeatureId f = row_features[k];
          const int g = result.feature_owner[f];
          const uint32_t fbytes = BytesForRange(dest_feature_count[g]);
          const BinId bin = result.splits.NumBins(f) == 0
                                ? BinId{0}
                                : result.splits.BinForValue(f, row_values[k]);
          WritePacked(&entry_writers[g], local_id_of[f], fbytes);
          WritePacked(&entry_writers[g], bin, bin_bytes);
          ++lens[g][i];
        }
      }
      for (int g = 0; g < w; ++g) {
        writers[g].WriteVector(lens[g]);
        writers[g].WriteVector(entry_writers[g].TakeData());
      }
    } else {
      // One framed message per row per destination.
      const bool naive = options.encoding == TransformEncoding::kNaive;
      for (InstanceId i = 0; i < rows; ++i) {
        auto row_features = m.RowFeatures(i);
        auto row_values = m.RowValues(i);
        // Per-row length prefix for each destination, written lazily: count
        // entries per destination first.
        std::vector<uint32_t> counts(w, 0);
        for (FeatureId f : row_features) ++counts[result.feature_owner[f]];
        for (int g = 0; g < w; ++g) {
          writers[g].WriteU32(counts[g]);
          for (uint32_t pad = 0; pad < kPerRowObjectOverhead; ++pad) {
            writers[g].WriteU8(0);
          }
        }
        for (size_t k = 0; k < row_features.size(); ++k) {
          const FeatureId f = row_features[k];
          const int g = result.feature_owner[f];
          if (naive) {
            writers[g].WriteU32(f);
            writers[g].WriteF64(row_values[k]);
          } else {
            const uint32_t fbytes = BytesForRange(dest_feature_count[g]);
            const BinId bin =
                result.splits.NumBins(f) == 0
                    ? BinId{0}
                    : result.splits.BinForValue(f, row_values[k]);
            WritePacked(&writers[g], local_id_of[f], fbytes);
            WritePacked(&writers[g], bin, bin_bytes);
          }
        }
      }
    }
    for (int g = 0; g < w; ++g) to_dest[g] = writers[g].TakeData();
  }
  cpu.Stop();
  result.stats.encode_seconds = cpu.Seconds();
  encode_span.Close();
  cpu.Restart();
  cpu.Stop();

  // Step 4: repartition the column groups.
  const uint64_t bytes_before = ctx.stats().bytes_sent;
  const double sim_before_repart = ctx.stats().sim_seconds;
  std::vector<std::vector<uint8_t>> from_src;
  VERO_COMM_OK(ctx.AllToAll(std::move(to_dest), &from_src));
  result.stats.repartition_bytes_sent = ctx.stats().bytes_sent - bytes_before;
  result.stats.repartition_sim_seconds =
      ctx.stats().sim_seconds - sim_before_repart;
  cpu.Resume();
  obs::PhaseSpan decode_span(tb, "transform-decode", sim_clock);

  // Decode: one block per source worker, ordered by source rank so the
  // blocks tile [0, N) in order (step 4's sort by original worker id).
  const uint32_t my_feature_bytes = BytesForRange(dest_feature_count[rank]);
  for (int src = 0; src < w; ++src) {
    ByteReader reader(from_src[src]);
    uint32_t rows = 0;
    VERO_CHECK_OK(reader.ReadU32(&rows));
    VERO_CHECK_EQ(rows, shard_rows[src]);
    ColumnGroupBlock block;
    block.row_offset = row_offsets[src];

    if (options.encoding == TransformEncoding::kBlockified) {
      std::vector<uint32_t> lens;
      VERO_CHECK_OK(reader.ReadVector(&lens));
      std::vector<uint8_t> payload;
      VERO_CHECK_OK(reader.ReadVector(&payload));
      ByteReader entries(payload);
      uint64_t total = 0;
      for (uint32_t len : lens) total += len;
      block.features.reserve(total);
      block.bins.reserve(total);
      block.row_ptr.reserve(rows + 1);
      for (uint32_t r = 0; r < rows; ++r) {
        for (uint32_t k = 0; k < lens[r]; ++k) {
          block.features.push_back(
              static_cast<uint32_t>(ReadPacked(&entries, my_feature_bytes)));
          block.bins.push_back(
              static_cast<BinId>(ReadPacked(&entries, bin_bytes)));
        }
        block.row_ptr.push_back(static_cast<uint32_t>(block.features.size()));
      }
    } else {
      const bool naive = options.encoding == TransformEncoding::kNaive;
      for (uint32_t r = 0; r < rows; ++r) {
        uint32_t len = 0;
        VERO_CHECK_OK(reader.ReadU32(&len));
        VERO_CHECK_OK(reader.Skip(kPerRowObjectOverhead));
        // Per-row staging vector: the small-object churn blockify avoids.
        std::vector<std::pair<uint32_t, BinId>> row;
        row.reserve(len);
        for (uint32_t k = 0; k < len; ++k) {
          if (naive) {
            uint32_t f = 0;
            double v = 0.0;
            VERO_CHECK_OK(reader.ReadU32(&f));
            VERO_CHECK_OK(reader.ReadF64(&v));
            const BinId bin =
                result.splits.NumBins(f) == 0
                    ? BinId{0}
                    : result.splits.BinForValue(f, static_cast<float>(v));
            row.emplace_back(local_id_of[f], bin);
          } else {
            const uint32_t lf =
                static_cast<uint32_t>(ReadPacked(&reader, my_feature_bytes));
            const BinId bin =
                static_cast<BinId>(ReadPacked(&reader, bin_bytes));
            row.emplace_back(lf, bin);
          }
        }
        for (const auto& [lf, bin] : row) {
          block.features.push_back(lf);
          block.bins.push_back(bin);
        }
        block.row_ptr.push_back(static_cast<uint32_t>(block.features.size()));
      }
    }
    result.data.AppendBlock(std::move(block));
  }
  result.data.MergeBlocks(options.max_blocks);
  cpu.Stop();
  result.stats.decode_seconds = cpu.Seconds();
  decode_span.Close();

  // Step 5: broadcast instance labels (master collects, then broadcasts).
  obs::PhaseSpan label_span(tb, "label-broadcast", sim_clock);
  const double sim_before_labels = ctx.stats().sim_seconds;
  {
    ByteWriter writer;
    writer.WriteVector(shard.labels());
    std::vector<std::vector<uint8_t>> gathered;
    VERO_COMM_OK(ctx.Gather(writer.data(), /*root=*/0, &gathered));
    std::vector<uint8_t> all_labels;
    if (rank == 0) {
      std::vector<float> labels;
      labels.reserve(result.num_instances);
      for (const auto& buf : gathered) {
        ByteReader reader(buf);
        std::vector<float> part;
        VERO_CHECK_OK(reader.ReadVector(&part));
        labels.insert(labels.end(), part.begin(), part.end());
      }
      ByteWriter out;
      out.WriteVector(labels);
      all_labels = out.TakeData();
    }
    VERO_COMM_OK(ctx.Broadcast(&all_labels, /*root=*/0));
    ByteReader reader(all_labels);
    VERO_CHECK_OK(reader.ReadVector(&result.labels));
  }
  result.stats.label_broadcast_sim_seconds =
      ctx.stats().sim_seconds - sim_before_labels;
  result.stats.sim_comm_seconds =
      ctx.stats().sim_seconds - comm_before.sim_seconds;
  VERO_CHECK_EQ(result.labels.size(), result.num_instances);
  return result;
}

}  // namespace vero
