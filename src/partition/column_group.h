#ifndef VERO_PARTITION_COLUMN_GROUP_H_
#define VERO_PARTITION_COLUMN_GROUP_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/types.h"

namespace vero {

/// One block of a vertically partitioned, row-stored column group
/// (Figure 9 of the paper). A block holds the rows contributed by one file
/// split (in our simulation: one source worker), as three arrays —
/// instance pointers, local feature ids, and histogram bin indexes.
struct ColumnGroupBlock {
  /// Global instance id of this block's first row.
  InstanceId row_offset = 0;
  /// Instance pointers: entries of block-row r live at
  /// [row_ptr[r], row_ptr[r+1]).
  std::vector<uint32_t> row_ptr = {0};
  /// Local feature ids (position within the owning worker's feature list).
  std::vector<uint32_t> features;
  /// Quantized values.
  std::vector<BinId> bins;

  uint32_t num_rows() const {
    return static_cast<uint32_t>(row_ptr.size() - 1);
  }
  uint64_t num_entries() const { return features.size(); }
};

/// A worker's vertical data shard in Vero: all N instances restricted to the
/// worker's feature subset, stored row-wise as a handful of blocks with a
/// two-phase index (binary-search the block by instance id, then index the
/// row inside the block — §4.2.3).
class ColumnGroup {
 public:
  ColumnGroup() = default;

  /// Blocks must be appended in increasing row_offset order and tile the
  /// instance space contiguously.
  void AppendBlock(ColumnGroupBlock block);

  /// Coalesces adjacent blocks until at most `max_blocks` remain (the
  /// paper's block-merge optimization; it reports < 5 blocks in practice).
  void MergeBlocks(size_t max_blocks);

  uint32_t num_instances() const { return num_instances_; }
  size_t num_blocks() const { return blocks_.size(); }
  const ColumnGroupBlock& block(size_t b) const { return blocks_[b]; }
  uint64_t num_entries() const;

  /// Two-phase lookup of one instance's row.
  std::span<const uint32_t> RowFeatures(InstanceId instance) const;
  std::span<const BinId> RowBins(InstanceId instance) const;

  /// Bin of (instance, local feature) via two-phase index plus binary search
  /// within the row; nullopt if the instance misses the feature.
  std::optional<BinId> FindBin(InstanceId instance, uint32_t local_feature) const;

  uint64_t MemoryBytes() const;

 private:
  // Resolves (block index, row-within-block) for a global instance id.
  std::pair<size_t, uint32_t> Locate(InstanceId instance) const;

  std::vector<ColumnGroupBlock> blocks_;
  std::vector<InstanceId> block_offsets_;  // row_offset per block, ascending.
  uint32_t num_instances_ = 0;
};

}  // namespace vero

#endif  // VERO_PARTITION_COLUMN_GROUP_H_
