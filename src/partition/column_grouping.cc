#include "partition/column_grouping.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/logging.h"

namespace vero {

const char* ColumnGroupingStrategyToString(ColumnGroupingStrategy s) {
  switch (s) {
    case ColumnGroupingStrategy::kGreedyBalance:
      return "greedy";
    case ColumnGroupingStrategy::kRoundRobin:
      return "round-robin";
    case ColumnGroupingStrategy::kRange:
      return "range";
  }
  return "?";
}

std::vector<int> AssignFeatureGroups(const std::vector<uint64_t>& feature_costs,
                                     int num_groups,
                                     ColumnGroupingStrategy strategy) {
  VERO_CHECK_GT(num_groups, 0);
  const size_t d = feature_costs.size();
  std::vector<int> owner(d, 0);
  if (num_groups == 1) return owner;

  switch (strategy) {
    case ColumnGroupingStrategy::kRoundRobin: {
      for (size_t f = 0; f < d; ++f) owner[f] = static_cast<int>(f % num_groups);
      return owner;
    }
    case ColumnGroupingStrategy::kRange: {
      for (size_t f = 0; f < d; ++f) {
        owner[f] = static_cast<int>(f * num_groups / d);
      }
      return owner;
    }
    case ColumnGroupingStrategy::kGreedyBalance: {
      // Longest-processing-time: features in decreasing cost order, each to
      // the currently lightest group. Ties broken deterministically by
      // feature id / group id.
      std::vector<uint32_t> order(d);
      std::iota(order.begin(), order.end(), 0);
      std::stable_sort(order.begin(), order.end(),
                       [&](uint32_t a, uint32_t b) {
                         return feature_costs[a] > feature_costs[b];
                       });
      using Load = std::pair<uint64_t, int>;  // (load, group)
      std::priority_queue<Load, std::vector<Load>, std::greater<Load>> heap;
      for (int g = 0; g < num_groups; ++g) heap.emplace(0, g);
      for (uint32_t f : order) {
        auto [load, g] = heap.top();
        heap.pop();
        owner[f] = g;
        heap.emplace(load + feature_costs[f], g);
      }
      return owner;
    }
  }
  VERO_LOG(Fatal) << "unknown grouping strategy";
  return owner;
}

std::vector<uint64_t> GroupLoads(const std::vector<uint64_t>& feature_costs,
                                 const std::vector<int>& owner,
                                 int num_groups) {
  VERO_CHECK_EQ(feature_costs.size(), owner.size());
  std::vector<uint64_t> loads(num_groups, 0);
  for (size_t f = 0; f < owner.size(); ++f) {
    loads[owner[f]] += feature_costs[f];
  }
  return loads;
}

double LoadImbalance(const std::vector<uint64_t>& loads) {
  if (loads.empty()) return 1.0;
  uint64_t max_load = 0, total = 0;
  for (uint64_t l : loads) {
    max_load = std::max(max_load, l);
    total += l;
  }
  const double mean = static_cast<double>(total) / loads.size();
  return mean > 0 ? static_cast<double>(max_load) / mean : 1.0;
}

}  // namespace vero
