#!/usr/bin/env bash
# Builds the recovery / checkpoint / straggler test binaries under
# AddressSanitizer + UndefinedBehaviorSanitizer and runs them. The elastic
# paths tear clusters down mid-collective and re-adopt fault injectors
# across incarnations, so lifetime bugs (use-after-free of worker state,
# out-of-bounds shard math after a resize) show up here first; UBSan guards
# the wire-format arithmetic in the delta-checkpoint and histogram-
# compression codecs.
#
#   scripts/asan_tests.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -DVERO_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target \
  fault_tolerance_test elastic_recovery_test elasticity_test \
  checkpoint_rotation_test delta_checkpoint_test integrity_test \
  straggler_mitigation_test codec_test communicator_test serve_test

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
for t in fault_tolerance_test elastic_recovery_test elasticity_test \
         checkpoint_rotation_test delta_checkpoint_test integrity_test \
         straggler_mitigation_test codec_test communicator_test \
         serve_test; do
  echo "== ASan/UBSan: $t =="
  "$BUILD_DIR/tests/$t"
done
echo "All ASan/UBSan test binaries passed."
