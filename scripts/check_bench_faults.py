#!/usr/bin/env python3
"""Validates the fault-grid failure sweep (bench/fault_grid --report).

Two modes:

  check_bench_faults.py --json BENCH_faults.json
      Validate an already-emitted "vero.bench_report.v1" report produced by
      fault_grid (scripts/bench_smoke.sh uses this).

  check_bench_faults.py --emitter PATH/TO/fault_grid
      Run the bench binary itself into a temp dir at a tiny VERO_SCALE and
      validate the result. Registered as the check_bench_faults ctest.

Beyond schema shape, this checks the straggler-mitigation contract:

  * runs group into grid cells, each cell with exactly the three modes
    (strict / bounded / speculative) on the same fault schedule;
  * strict runs keep every staleness.* / speculation.* counter at zero
    (mitigation off == seed behavior);
  * train-phase cells with a dominant straggler (delay >= 0.5 s): both
    mitigation modes beat strict train_seconds, bounded actually deferred
    contributions, and speculation launched backups and charged their
    duplicated traffic to wasted_bytes.

and the recovery-grid contract (rg-ci<interval>-<crash>-<resize> cells):

  * the full checkpoint_interval x crash x resize product is present,
    every run completed at the width its resize schedule dictates;
  * crash cells observed a failure and ran recovery; crash-free cells
    show zero failures and zero recovery traffic;
  * resize=up cells admitted workers and priced re-shard traffic,
    resize=down cells retired workers, resize=none cells never resized;
  * for a matched crash x resize pair, the sparse-checkpoint run (largest
    interval) retrains at least as many trees as the per-tree-checkpoint
    run (denser checkpoints never lose more work).

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

SCHEMA = "vero.bench_report.v1"
MODES = ("strict", "bounded", "speculative")
LABEL_RE = re.compile(
    r"^run\d+-(?P<quadrant>[a-z0-9]+)-w(?P<workers>\d+)-"
    r"(?P<cell>fg-(?P<phase>train|setup)-r\d+-d(?P<delay>[0-9.]+))-"
    r"(?P<mode>strict|bounded|speculative)$")
RG_LABEL_RE = re.compile(
    r"^run\d+-(?P<quadrant>[a-z0-9]+)-w(?P<workers>\d+)-"
    r"rg-ci(?P<interval>\d+)-(?P<crash>none|early|late)-"
    r"(?P<resize>none|up|down)$")
RG_CRASHES = ("none", "early", "late")
RG_RESIZES = ("none", "up", "down")
STALENESS_COUNTERS = (
    "staleness.deferred_contributions",
    "staleness.forced_syncs",
    "speculation.launched",
    "speculation.wasted_bytes",
)


def fail(message):
    print(f"check_bench_faults: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def counter(run, name):
    entry = run.get("metrics", {}).get(name)
    if entry is None:
        return 0
    if entry.get("kind") != "counter":
        fail(f"{run['label']}: metric {name} is not a counter")
    return entry["value"]


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")

    cells = {}
    recovery_runs = {}
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
        for key in ("label", "train_seconds", "wasted_bytes", "metrics"):
            if key not in run:
                fail(f"runs[{i}] missing key {key!r}")
        if not isinstance(run["train_seconds"], (int, float)) \
                or run["train_seconds"] <= 0:
            fail(f"{run['label']}: train_seconds must be positive")
        rg = RG_LABEL_RE.match(run["label"])
        if rg is not None:
            key = (int(rg.group("interval")), rg.group("crash"),
                   rg.group("resize"))
            if key in recovery_runs:
                fail(f"duplicate recovery-grid run for {run['label']!r}")
            recovery_runs[key] = (int(rg.group("workers")), run)
            continue
        m = LABEL_RE.match(run["label"])
        if m is None:
            fail(f"runs[{i}].label {run['label']!r} is not a fault-grid "
                 "label (runNNN-<quadrant>-wW-fg-<phase>-rR-dD-<mode> or "
                 "runNNN-<quadrant>-wW-rg-ciI-<crash>-<resize>)")
        cell = cells.setdefault(
            m.group("cell"),
            {"phase": m.group("phase"), "delay": float(m.group("delay")),
             "modes": {}})
        if m.group("mode") in cell["modes"]:
            fail(f"duplicate run for {m.group('cell')} / {m.group('mode')}")
        cell["modes"][m.group("mode")] = run

    if not cells:
        fail("no fault-grid cells found")
    for name, cell in sorted(cells.items()):
        missing = set(MODES) - cell["modes"].keys()
        if missing:
            fail(f"cell {name} missing modes: {sorted(missing)}")
        strict = cell["modes"]["strict"]
        bounded = cell["modes"]["bounded"]
        spec = cell["modes"]["speculative"]

        # Mitigation off must look exactly like the seed: no staleness or
        # speculation accounting anywhere in the strict run.
        for metric in STALENESS_COUNTERS:
            if counter(strict, metric) != 0:
                fail(f"cell {name}: strict run has nonzero {metric}")
        if strict["wasted_bytes"] != 0:
            fail(f"cell {name}: strict run has nonzero wasted_bytes")

        if cell["phase"] == "train" and cell["delay"] >= 0.5:
            # A dominant straggler: mitigated goodput must beat strict.
            for mode_name, run in (("bounded", bounded),
                                   ("speculative", spec)):
                if run["train_seconds"] >= strict["train_seconds"]:
                    fail(f"cell {name}: {mode_name} train_seconds "
                         f"{run['train_seconds']:.4f} does not beat strict "
                         f"{strict['train_seconds']:.4f}")
            if counter(bounded, "staleness.deferred_contributions") == 0:
                fail(f"cell {name}: bounded run never deferred")
            if counter(spec, "speculation.launched") == 0:
                fail(f"cell {name}: speculative run never launched")
            if counter(spec, "speculation.wasted_bytes") == 0 \
                    or spec["wasted_bytes"] == 0:
                fail(f"cell {name}: speculative run charged no waste")
            if spec["wasted_bytes"] != counter(spec,
                                               "speculation.wasted_bytes"):
                fail(f"cell {name}: report wasted_bytes "
                     f"{spec['wasted_bytes']} != speculation.wasted_bytes "
                     f"counter {counter(spec, 'speculation.wasted_bytes')}")

    validate_recovery_grid(recovery_runs)

    print(f"check_bench_faults: OK ({path}: {len(runs)} runs, "
          f"{len(cells)} straggler cells, {len(recovery_runs)} recovery "
          "cells)")


def validate_recovery_grid(recovery_runs):
    """Checks the rg-ci<I>-<crash>-<resize> family (may be absent in old
    reports; any presence requires the full product)."""
    if not recovery_runs:
        return
    intervals = sorted({key[0] for key in recovery_runs})
    for interval in intervals:
        for crash in RG_CRASHES:
            for resize in RG_RESIZES:
                if (interval, crash, resize) not in recovery_runs:
                    fail(f"recovery grid missing cell "
                         f"rg-ci{interval}-{crash}-{resize}")

    for (interval, crash, resize), (workers, run) in \
            sorted(recovery_runs.items()):
        label = run["label"]
        recovery = run.get("recovery")
        elasticity = run.get("elasticity")
        if not isinstance(recovery, dict) or not isinstance(elasticity, dict):
            fail(f"{label}: missing recovery/elasticity blocks")

        want_width = workers + {"none": 0, "up": 1, "down": -1}[resize]
        if recovery.get("final_world_size") != want_width:
            fail(f"{label}: final_world_size "
                 f"{recovery.get('final_world_size')} != scheduled width "
                 f"{want_width}")

        if crash == "none":
            if recovery.get("failures_observed", 0) != 0:
                fail(f"{label}: crash-free run observed failures")
            if recovery.get("recovery_bytes", 0) != 0:
                fail(f"{label}: crash-free run charged recovery traffic")
        else:
            if recovery.get("failures_observed", 0) < 1:
                fail(f"{label}: crash run observed no failure")
            if recovery.get("recovery_attempts", 0) < 1:
                fail(f"{label}: crash run never ran recovery")

        if resize == "none":
            if elasticity.get("resizes", 0) != 0:
                fail(f"{label}: resize-free run resized")
            if elasticity.get("reshard_bytes", 0) != 0:
                fail(f"{label}: resize-free run priced re-shard traffic")
        else:
            if elasticity.get("resizes", 0) != 1:
                fail(f"{label}: expected exactly one resize, got "
                     f"{elasticity.get('resizes', 0)}")
            if elasticity.get("reshard_bytes", 0) <= 0:
                fail(f"{label}: resize run priced no re-shard traffic")
            if elasticity.get("reshard_seconds", 0) <= 0:
                fail(f"{label}: resize run charged no re-shard time")
            if resize == "up" and elasticity.get("admitted_workers", 0) < 1:
                fail(f"{label}: scale-up admitted no workers")
            if resize == "down" and elasticity.get("retired_workers", 0) < 1:
                fail(f"{label}: scale-down retired no workers")

    # Denser checkpoints never lose more committed work: for each matched
    # crash x resize pair, the sparsest-interval run retrains at least as
    # many trees as the densest-interval run.
    if len(intervals) >= 2:
        dense, sparse = intervals[0], intervals[-1]
        for crash in RG_CRASHES:
            if crash == "none":
                continue
            for resize in RG_RESIZES:
                dense_run = recovery_runs[(dense, crash, resize)][1]
                sparse_run = recovery_runs[(sparse, crash, resize)][1]
                d = dense_run["recovery"].get("trees_retrained", 0)
                s = sparse_run["recovery"].get("trees_retrained", 0)
                if s < d:
                    fail(f"recovery grid {crash}/{resize}: ci={sparse} "
                         f"retrained {s} trees < ci={dense}'s {d} (sparser "
                         "checkpoints should never retrain less)")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_faults.json")
        env = dict(os.environ)
        # Tiny workload: the ctest entry checks the contract, not scale.
        env.setdefault("VERO_SCALE", "0.05")
        env.setdefault("VERO_BENCH_TREES", "2")
        proc = subprocess.run([emitter, "--fault-grid", "--report", out],
                              env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an existing report")
    parser.add_argument("--emitter", help="run fault_grid --fault-grid")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
