#!/usr/bin/env python3
"""Validates the fault-grid failure sweep (bench/fault_grid --report).

Two modes:

  check_bench_faults.py --json BENCH_faults.json
      Validate an already-emitted "vero.bench_report.v1" report produced by
      fault_grid (scripts/bench_smoke.sh uses this).

  check_bench_faults.py --emitter PATH/TO/fault_grid
      Run the bench binary itself into a temp dir at a tiny VERO_SCALE and
      validate the result. Registered as the check_bench_faults ctest.

Beyond schema shape, this checks the straggler-mitigation contract:

  * runs group into grid cells, each cell with exactly the three modes
    (strict / bounded / speculative) on the same fault schedule;
  * strict runs keep every staleness.* / speculation.* counter at zero
    (mitigation off == seed behavior);
  * train-phase cells with a dominant straggler (delay >= 0.5 s): both
    mitigation modes beat strict train_seconds, bounded actually deferred
    contributions, and speculation launched backups and charged their
    duplicated traffic to wasted_bytes.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

SCHEMA = "vero.bench_report.v1"
MODES = ("strict", "bounded", "speculative")
LABEL_RE = re.compile(
    r"^run\d+-(?P<quadrant>[a-z0-9]+)-w(?P<workers>\d+)-"
    r"(?P<cell>fg-(?P<phase>train|setup)-r\d+-d(?P<delay>[0-9.]+))-"
    r"(?P<mode>strict|bounded|speculative)$")
STALENESS_COUNTERS = (
    "staleness.deferred_contributions",
    "staleness.forced_syncs",
    "speculation.launched",
    "speculation.wasted_bytes",
)


def fail(message):
    print(f"check_bench_faults: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def counter(run, name):
    entry = run.get("metrics", {}).get(name)
    if entry is None:
        return 0
    if entry.get("kind") != "counter":
        fail(f"{run['label']}: metric {name} is not a counter")
    return entry["value"]


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")

    cells = {}
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
        for key in ("label", "train_seconds", "wasted_bytes", "metrics"):
            if key not in run:
                fail(f"runs[{i}] missing key {key!r}")
        m = LABEL_RE.match(run["label"])
        if m is None:
            fail(f"runs[{i}].label {run['label']!r} is not a fault-grid "
                 "label (runNNN-<quadrant>-wW-fg-<phase>-rR-dD-<mode>)")
        if not isinstance(run["train_seconds"], (int, float)) \
                or run["train_seconds"] <= 0:
            fail(f"{run['label']}: train_seconds must be positive")
        cell = cells.setdefault(
            m.group("cell"),
            {"phase": m.group("phase"), "delay": float(m.group("delay")),
             "modes": {}})
        if m.group("mode") in cell["modes"]:
            fail(f"duplicate run for {m.group('cell')} / {m.group('mode')}")
        cell["modes"][m.group("mode")] = run

    if not cells:
        fail("no fault-grid cells found")
    for name, cell in sorted(cells.items()):
        missing = set(MODES) - cell["modes"].keys()
        if missing:
            fail(f"cell {name} missing modes: {sorted(missing)}")
        strict = cell["modes"]["strict"]
        bounded = cell["modes"]["bounded"]
        spec = cell["modes"]["speculative"]

        # Mitigation off must look exactly like the seed: no staleness or
        # speculation accounting anywhere in the strict run.
        for metric in STALENESS_COUNTERS:
            if counter(strict, metric) != 0:
                fail(f"cell {name}: strict run has nonzero {metric}")
        if strict["wasted_bytes"] != 0:
            fail(f"cell {name}: strict run has nonzero wasted_bytes")

        if cell["phase"] == "train" and cell["delay"] >= 0.5:
            # A dominant straggler: mitigated goodput must beat strict.
            for mode_name, run in (("bounded", bounded),
                                   ("speculative", spec)):
                if run["train_seconds"] >= strict["train_seconds"]:
                    fail(f"cell {name}: {mode_name} train_seconds "
                         f"{run['train_seconds']:.4f} does not beat strict "
                         f"{strict['train_seconds']:.4f}")
            if counter(bounded, "staleness.deferred_contributions") == 0:
                fail(f"cell {name}: bounded run never deferred")
            if counter(spec, "speculation.launched") == 0:
                fail(f"cell {name}: speculative run never launched")
            if counter(spec, "speculation.wasted_bytes") == 0 \
                    or spec["wasted_bytes"] == 0:
                fail(f"cell {name}: speculative run charged no waste")
            if spec["wasted_bytes"] != counter(spec,
                                               "speculation.wasted_bytes"):
                fail(f"cell {name}: report wasted_bytes "
                     f"{spec['wasted_bytes']} != speculation.wasted_bytes "
                     f"counter {counter(spec, 'speculation.wasted_bytes')}")

    print(f"check_bench_faults: OK ({path}: {len(runs)} runs, "
          f"{len(cells)} cells)")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_faults.json")
        env = dict(os.environ)
        # Tiny workload: the ctest entry checks the contract, not scale.
        env.setdefault("VERO_SCALE", "0.05")
        env.setdefault("VERO_BENCH_TREES", "2")
        proc = subprocess.run([emitter, "--fault-grid", "--report", out],
                              env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an existing report")
    parser.add_argument("--emitter", help="run fault_grid --fault-grid")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
