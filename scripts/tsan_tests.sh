#!/usr/bin/env bash
# Builds the concurrency-sensitive targets under ThreadSanitizer and runs
# the cluster / communicator / fault-tolerance test binaries. Races in the
# simulated cluster substrate (barrier, collectives, fault injection,
# recovery orchestration) show up here long before they corrupt an
# experiment.
#
#   scripts/tsan_tests.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -DVERO_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" --target \
  communicator_test communicator_stress_test fault_tolerance_test \
  elastic_recovery_test elasticity_test checkpoint_rotation_test \
  delta_checkpoint_test straggler_mitigation_test integrity_test \
  codec_test threading_test hist_builder_test dist_trainer_test obs_test \
  serve_test

export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
for t in communicator_test communicator_stress_test fault_tolerance_test \
         elastic_recovery_test elasticity_test checkpoint_rotation_test \
         delta_checkpoint_test straggler_mitigation_test integrity_test \
         codec_test threading_test hist_builder_test dist_trainer_test \
         obs_test serve_test; do
  echo "== TSan: $t =="
  "$BUILD_DIR/tests/$t"
done
echo "All TSan test binaries passed."
