#!/usr/bin/env python3
"""Validates the serving-throughput snapshot (BENCH_serve.json).

Two modes:

  check_bench_serve.py --json BENCH_serve.json
      Validate an already-emitted snapshot against the
      "vero.serve_bench.v1" schema (scripts/bench_smoke.sh uses this).

  check_bench_serve.py --emitter PATH/TO/serve_sweep
      Run the bench binary itself (serve_sweep --json) into a temp dir at
      a tiny VERO_SCALE and validate the result. Registered as the
      check_bench_serve ctest.

Checked invariants (see docs/serving.md):
  - schema / workload / forest-grid shape: forests {8, 64} trees x
    C in {1, 3}, cells batch {64, 1024, 8192} x threads {1, 4};
  - every throughput is a positive number;
  - determinism: within one forest, the per-row baseline digest and every
    cell digest are identical — batched, tiled, threaded scoring produced
    byte-identical margins on the measured run;
  - monotone-batch sanity: growing the batch from 64 to >= 1024 at one
    thread never loses more than half the throughput;
  - on full-scale snapshots (scale >= 0.25) only: each 8-tree forest must
    reach >= 5x per-row throughput in some cell with batch >= 1024 (the
    acceptance bar; tiny ctest runs are too noisy to gate on speed).

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "vero.serve_bench.v1"
WORKLOAD_KEYS = {"rows", "features", "depth", "density", "scale", "cpus"}
FOREST_KEYS = {"trees", "dims", "internal_nodes", "leaves", "per_row",
               "cells"}
CELL_KEYS = {"batch", "threads", "seconds", "rows_per_sec",
             "speedup_vs_per_row", "digest"}
REQUIRED_FORESTS = [(8, 1), (8, 3), (64, 1), (64, 3)]
REQUIRED_CELLS = [(b, t) for b in (64, 1024, 8192) for t in (1, 4)]
FULL_SCALE = 0.25
SPEEDUP_BAR = 5.0


def fail(message):
    print(f"check_bench_serve: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_positive_number(value, label):
    if not isinstance(value, (int, float)) or value <= 0:
        fail(f"{label} must be a positive number")


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")

    workload = doc.get("workload")
    if not isinstance(workload, dict):
        fail("missing workload object")
    missing = WORKLOAD_KEYS - workload.keys()
    if missing:
        fail(f"workload missing keys: {sorted(missing)}")
    for key in ("rows", "features", "depth", "cpus"):
        if not isinstance(workload[key], int) or workload[key] <= 0:
            fail(f"workload.{key} must be a positive integer")
    if not 0 < workload["density"] <= 1:
        fail("workload.density must be in (0, 1]")
    check_positive_number(workload["scale"], "workload.scale")
    full_scale = workload["scale"] >= FULL_SCALE

    forests = doc.get("forests")
    if not isinstance(forests, list) or not forests:
        fail("forests must be a non-empty list")

    seen_forests = set()
    for i, forest in enumerate(forests):
        if not isinstance(forest, dict):
            fail(f"forests[{i}] is not an object")
        missing = FOREST_KEYS - forest.keys()
        if missing:
            fail(f"forests[{i}] missing keys: {sorted(missing)}")
        for key in ("trees", "dims", "internal_nodes", "leaves"):
            if not isinstance(forest[key], int) or forest[key] <= 0:
                fail(f"forests[{i}].{key} must be a positive integer")
        label = f"forests[{i}] (T={forest['trees']} C={forest['dims']})"
        point = (forest["trees"], forest["dims"])
        if point in seen_forests:
            fail(f"duplicate forest entry {point}")
        seen_forests.add(point)

        per_row = forest["per_row"]
        if not isinstance(per_row, dict):
            fail(f"{label}.per_row is not an object")
        for key in ("seconds", "rows_per_sec"):
            check_positive_number(per_row.get(key), f"{label}.per_row.{key}")
        baseline_digest = per_row.get("digest")
        if not isinstance(baseline_digest, str) or len(baseline_digest) != 16:
            fail(f"{label}.per_row.digest must be a 16-hex-char string")

        cells = forest["cells"]
        if not isinstance(cells, list) or not cells:
            fail(f"{label}.cells must be a non-empty list")
        seen_cells = set()
        by_cell = {}
        for j, cell in enumerate(cells):
            if not isinstance(cell, dict):
                fail(f"{label}.cells[{j}] is not an object")
            missing = CELL_KEYS - cell.keys()
            if missing:
                fail(f"{label}.cells[{j}] missing keys: {sorted(missing)}")
            for key in ("batch", "threads"):
                if not isinstance(cell[key], int) or cell[key] <= 0:
                    fail(f"{label}.cells[{j}].{key} must be a positive "
                         "integer")
            for key in ("seconds", "rows_per_sec", "speedup_vs_per_row"):
                check_positive_number(cell[key], f"{label}.cells[{j}].{key}")
            grid = (cell["batch"], cell["threads"])
            if grid in seen_cells:
                fail(f"{label}: duplicate cell {grid}")
            seen_cells.add(grid)
            by_cell[grid] = cell
            # Thread- and batch-determinism: the measured margins of every
            # cell must be byte-identical to the per-row baseline's.
            if cell["digest"] != baseline_digest:
                fail(f"{label}.cells[{j}] digest {cell['digest']} differs "
                     f"from per-row baseline {baseline_digest}: batched "
                     "scoring is not bit-identical")

        for grid in REQUIRED_CELLS:
            if grid not in seen_cells:
                fail(f"{label}: missing cell (batch, threads) = {grid}")

        # Monotone-batch sanity at one thread: a bigger batch amortizes
        # strictly more, so it must keep at least half the small-batch
        # throughput (0.5 slack absorbs timer noise).
        small = by_cell[(64, 1)]["rows_per_sec"]
        for batch in (1024, 8192):
            big = by_cell[(batch, 1)]["rows_per_sec"]
            if big < 0.5 * small:
                fail(f"{label}: batch={batch} throughput {big:.0f} fell "
                     f"below half of batch=64 ({small:.0f})")

        if full_scale and forest["trees"] == 8:
            best = max(cell["speedup_vs_per_row"]
                       for (batch, _), cell in by_cell.items()
                       if batch >= 1024)
            if best < SPEEDUP_BAR:
                fail(f"{label}: best batch>=1024 speedup {best:.2f}x is "
                     f"below the {SPEEDUP_BAR}x acceptance bar")

    for point in REQUIRED_FORESTS:
        if point not in seen_forests:
            fail(f"missing forest (trees, dims) = {point}")

    mode = "full-scale" if full_scale else "tiny-scale (speed gate skipped)"
    print(f"check_bench_serve: OK ({path}: {len(forests)} forests, "
          f"rows={workload['rows']}, {mode})")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_serve.json")
        env = dict(os.environ)
        # Tiny workload: the ctest entry checks schema and determinism
        # digests, not throughput.
        env.setdefault("VERO_SCALE", "0.02")
        proc = subprocess.run([emitter, "--json", out], env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an existing snapshot")
    parser.add_argument("--emitter", help="run serve_sweep --json")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
