#!/usr/bin/env python3
"""Validates the histogram-kernel perf snapshot (BENCH_histogram.json).

Two modes:

  check_bench_hist.py --json BENCH_histogram.json
      Validate an already-emitted snapshot against the
      "vero.hist_bench.v1" schema (scripts/bench_smoke.sh uses this).

  check_bench_hist.py --emitter PATH/TO/micro_kernels
      Run the bench binary itself (micro_kernels --hist-json) into a temp
      dir at a tiny VERO_SCALE and validate the result. Registered as the
      check_bench_hist ctest.

The snapshot schema is documented in docs/performance.md. Exits non-zero
with a message on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "vero.hist_bench.v1"
WORKLOAD_KEYS = {
    "instances", "features", "bins", "density", "entries", "layer_nodes",
    "cpus",
}
KERNEL_KEYS = {
    "name", "dims", "threads", "seconds", "rows_per_sec", "entries_per_sec",
    "bytes_per_sec", "speedup_vs_scalar",
}
# Every snapshot must contain these (name, dims, threads) grid points.
REQUIRED_GRID = [
    ("scalar_row_add", 1, 1),
    ("scalar_row_add", 3, 1),
    ("builder_row_layer", 1, 1),
    ("builder_row_layer", 1, 4),
    ("builder_row_layer", 3, 1),
    ("builder_row_layer", 3, 4),
    ("scalar_column_binary_search", 1, 1),
    ("builder_column_sweep", 1, 1),
    ("builder_column_sweep", 1, 4),
]


def fail(message):
    print(f"check_bench_hist: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")

    workload = doc.get("workload")
    if not isinstance(workload, dict):
        fail("missing workload object")
    missing = WORKLOAD_KEYS - workload.keys()
    if missing:
        fail(f"workload missing keys: {sorted(missing)}")
    for key in ("instances", "features", "bins", "entries", "layer_nodes",
                "cpus"):
        if not isinstance(workload[key], int) or workload[key] <= 0:
            fail(f"workload.{key} must be a positive integer")
    if not 0 < workload["density"] <= 1:
        fail("workload.density must be in (0, 1]")

    kernels = doc.get("kernels")
    if not isinstance(kernels, list) or not kernels:
        fail("kernels must be a non-empty list")
    seen = set()
    for i, k in enumerate(kernels):
        if not isinstance(k, dict):
            fail(f"kernels[{i}] is not an object")
        missing = KERNEL_KEYS - k.keys()
        if missing:
            fail(f"kernels[{i}] missing keys: {sorted(missing)}")
        if not isinstance(k["name"], str) or not k["name"]:
            fail(f"kernels[{i}].name must be a non-empty string")
        for key in ("dims", "threads"):
            if not isinstance(k[key], int) or k[key] <= 0:
                fail(f"kernels[{i}].{key} must be a positive integer")
        for key in ("seconds", "rows_per_sec", "entries_per_sec",
                    "bytes_per_sec", "speedup_vs_scalar"):
            if not isinstance(k[key], (int, float)) or k[key] <= 0:
                fail(f"kernels[{i}].{key} must be a positive number")
        point = (k["name"], k["dims"], k["threads"])
        if point in seen:
            fail(f"duplicate kernel entry {point}")
        seen.add(point)
        if k["name"].startswith("scalar_") and k["speedup_vs_scalar"] != 1.0:
            fail(f"kernels[{i}]: scalar baseline speedup must be 1.0")

    for point in REQUIRED_GRID:
        if point not in seen:
            fail(f"missing grid point (name, dims, threads) = {point}")

    print(f"check_bench_hist: OK ({path}: {len(kernels)} kernels, "
          f"N={workload['instances']}, cpus={workload['cpus']})")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_histogram.json")
        env = dict(os.environ)
        # Tiny workload: the ctest entry checks the schema, not throughput.
        env.setdefault("VERO_SCALE", "0.02")
        proc = subprocess.run([emitter, "--hist-json", out], env=env,
                              capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an existing snapshot")
    parser.add_argument("--emitter", help="run micro_kernels --hist-json")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
