#!/usr/bin/env python3
"""Validates the integrity sweep (bench/fault_grid --integrity-grid).

Two modes:

  check_bench_integrity.py --json BENCH_integrity.json
      Validate an already-emitted "vero.bench_report.v1" report produced by
      fault_grid --integrity-grid (scripts/bench_smoke.sh uses this).

  check_bench_integrity.py --emitter PATH/TO/fault_grid
      Run the bench binary itself into a temp dir at a tiny VERO_SCALE and
      validate the result. Registered as the check_bench_integrity ctest.

Beyond schema shape, this checks the end-to-end integrity contract:

  * clean grid (ig-clean-<level>, all four quadrants): the three integrity
    levels train bit-identical models (equal nonzero model_digest), move
    identical bytes in identical simulated time (the audit rides existing
    rendezvous), run checks only when enabled, and never raise a violation;
  * QD1 injection cells: silent corruption of a histogram all-reduce replica
    is detected at checksum+ and healed by layer recompute with the faulty
    rank blamed; corruption of the child-counts all-reduce escalates
    straight to checkpoint rollback (the blamed rank is expelled); NaN/Inf
    poison of gradient/histogram buffers sails through off AND checksum but
    is caught, blamed, and healed at full;
  * escape cells: the scanned corruption provably changes the final model at
    integrity=off (digest diverges from the clean reference while zero
    checks ran), and the identical fault at integrity=full is detected with
    a blamed rank and healed back to the reference digest.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

SCHEMA = "vero.bench_report.v1"
LEVELS = ("off", "checksum", "full")
QUADRANTS = ("qd1", "qd2", "qd3", "qd4")
LABEL_RE = re.compile(
    r"^run\d+-(?P<quadrant>[a-z0-9]+)-w(?P<workers>\d+)-ig-"
    r"(?:(?P<cell>clean|silent-hist|silent-counts|poison-grad|poison-hist)"
    r"-(?P<level>off|checksum|full)"
    r"|(?P<escape>escape-(?:ref|off|full)))$")
# Cell -> (levels it must run under, levels where the fault must be caught).
INJECTION_CELLS = {
    "silent-hist": (("checksum", "full"), ("checksum", "full")),
    "silent-counts": (("checksum", "full"), ("checksum", "full")),
    "poison-grad": (("off", "checksum", "full"), ("full",)),
    "poison-hist": (("off", "checksum", "full"), ("full",)),
}
# Cell -> rank its fault plan targets (the rank the auditor must blame).
INJECTED_RANK = {
    "silent-hist": 2,
    "silent-counts": 2,
    "poison-grad": 1,
    "poison-hist": 0,
}


def fail(message):
    print(f"check_bench_integrity: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def integrity(run):
    block = run.get("integrity")
    if not isinstance(block, dict):
        fail(f"{run['label']}: missing integrity block")
    return block


def check_clean_integrity(run, level):
    """A run with no injected fault: checks gated by level, no violations."""
    block = integrity(run)
    if block.get("level") != level:
        fail(f"{run['label']}: integrity.level {block.get('level')!r} does "
             f"not match label level {level!r}")
    if level == "off":
        if block.get("checks", 0) != 0:
            fail(f"{run['label']}: integrity=off ran audit checks")
    elif block.get("checks", 0) <= 0:
        fail(f"{run['label']}: integrity={level} ran no audit checks")
    for key in ("violations", "recomputes", "escalations", "rollbacks"):
        if block.get(key, 0) != 0:
            fail(f"{run['label']}: clean run has nonzero integrity.{key}")
    if block.get("last_blamed_rank", -1) != -1:
        fail(f"{run['label']}: clean run blamed a rank")


def check_clean_grid(clean):
    digests = {}
    for quadrant in QUADRANTS:
        levels = clean.get(quadrant)
        if levels is None:
            fail(f"clean grid missing quadrant {quadrant}")
        missing = set(LEVELS) - levels.keys()
        if missing:
            fail(f"clean grid {quadrant} missing levels: {sorted(missing)}")
        off = levels["off"]
        if off.get("model_digest", 0) == 0:
            fail(f"{off['label']}: model_digest not stamped")
        for level in LEVELS:
            run = levels[level]
            check_clean_integrity(run, level)
            if run.get("model_digest") != off["model_digest"]:
                fail(f"{run['label']}: model digest differs from the "
                     f"integrity=off run (auditing changed the model)")
            # train_seconds folds in measured host compute (jitters run to
            # run), so the "audit is free" claim is pinned on the exact
            # byte count and the bit-identical model instead.
            if run.get("train_bytes_sent") != off.get("train_bytes_sent"):
                fail(f"{run['label']}: train_bytes_sent differs from off — "
                     "the audit must move no modeled bytes")
        digests[quadrant] = off["model_digest"]
    return digests


def check_injection_cells(injections, clean_qd1_digest):
    for cell, (want_levels, caught_levels) in INJECTION_CELLS.items():
        levels = injections.get(cell)
        if levels is None:
            fail(f"injection grid missing cell {cell}")
        missing = set(want_levels) - levels.keys()
        if missing:
            fail(f"cell {cell} missing levels: {sorted(missing)}")
        for level in want_levels:
            run = levels[level]
            block = integrity(run)
            label = run["label"]
            if level not in caught_levels:
                # The fault is live but below this level's detection floor:
                # the run must look clean (that is the escape surface).
                check_clean_integrity(run, level)
                continue
            if block.get("violations", 0) < 1:
                fail(f"{label}: injected fault raised no violation")
            if block.get("last_blamed_rank") != INJECTED_RANK[cell]:
                fail(f"{label}: blamed rank "
                     f"{block.get('last_blamed_rank')} != injected rank "
                     f"{INJECTED_RANK[cell]}")
            if cell == "silent-counts":
                # No retained inputs to recompute counts from: escalates
                # straight to rollback, expelling the blamed rank.
                if block.get("recomputes", 0) != 0:
                    fail(f"{label}: counts corruption should not recompute")
                if block.get("escalations", 0) < 1 \
                        or block.get("rollbacks", 0) < 1:
                    fail(f"{label}: counts corruption did not escalate to "
                         "rollback")
                recovery = run.get("recovery", {})
                if recovery.get("recovery_attempts", 0) < 1:
                    fail(f"{label}: rollback ran no recovery attempt")
                if recovery.get("final_world_size") != run_workers(run) - 1:
                    fail(f"{label}: blamed rank was not expelled "
                         f"(final_world_size "
                         f"{recovery.get('final_world_size')})")
            else:
                if block.get("recomputes", 0) < 1:
                    fail(f"{label}: detected fault was never recomputed")
                if block.get("escalations", 0) != 0:
                    fail(f"{label}: recompute-healable fault escalated")
                if run.get("model_digest") != clean_qd1_digest:
                    fail(f"{label}: healed model digest differs from the "
                         "clean run (recompute did not restore the model)")
                if block.get("wasted_seconds", 0) <= 0:
                    fail(f"{label}: recompute charged no wasted_seconds")


def run_workers(run):
    m = re.match(r"^run\d+-[a-z0-9]+-w(\d+)-", run["label"])
    if m is None:
        fail(f"{run['label']}: cannot parse worker count")
    return int(m.group(1))


def check_escape_cells(escapes):
    missing = {"escape-ref", "escape-off", "escape-full"} - escapes.keys()
    if missing:
        fail(f"escape demo missing runs: {sorted(missing)}")
    ref = escapes["escape-ref"]
    off = escapes["escape-off"]
    full = escapes["escape-full"]
    quadrants = {run["quadrant"] for run in (ref, off, full)}
    if len(quadrants) != 1:
        fail(f"escape runs span multiple quadrants: {sorted(quadrants)}")
    for run in (ref, off):
        block = integrity(run)
        if block.get("level") != "off" or block.get("checks", 0) != 0:
            fail(f"{run['label']}: escape baseline must run integrity=off "
                 "with zero checks")
    if ref.get("model_digest", 0) == 0 or off.get("model_digest", 0) == 0:
        fail("escape runs missing model digests")
    if off["model_digest"] == ref["model_digest"]:
        fail("escape-off model digest equals the clean reference — no wrong "
             "model escaped at integrity=off")
    block = integrity(full)
    if block.get("level") != "full":
        fail(f"{full['label']}: escape-full must run integrity=full")
    if block.get("violations", 0) < 1:
        fail(f"{full['label']}: integrity=full missed the escaping fault")
    if block.get("last_blamed_rank", -1) < 0:
        fail(f"{full['label']}: integrity=full blamed no rank")
    if full["model_digest"] != ref["model_digest"]:
        fail(f"{full['label']}: integrity=full did not heal the model back "
             "to the clean reference")


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")

    clean = {}
    injections = {}
    escapes = {}
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
        for key in ("label", "train_seconds", "model_digest", "metrics"):
            if key not in run:
                fail(f"runs[{i}] missing key {key!r}")
        m = LABEL_RE.match(run["label"])
        if m is None:
            continue  # foreign (fg-/rg-) runs may share the report file
        if m.group("escape"):
            if m.group("escape") in escapes:
                fail(f"duplicate escape run {run['label']!r}")
            escapes[m.group("escape")] = run
            continue
        cell, level = m.group("cell"), m.group("level")
        if cell == "clean":
            bucket = clean.setdefault(m.group("quadrant"), {})
        else:
            if m.group("quadrant") != "qd1":
                fail(f"{run['label']}: injection cells run on qd1 only")
            bucket = injections.setdefault(cell, {})
        if level in bucket:
            fail(f"duplicate run for {run['label']!r}")
        bucket[level] = run

    if not clean and not injections and not escapes:
        fail("no integrity-grid (ig-*) runs found")
    digests = check_clean_grid(clean)
    check_injection_cells(injections, digests["qd1"])
    check_escape_cells(escapes)

    print(f"check_bench_integrity: OK ({path}: {len(runs)} runs, "
          f"{len(clean)} clean quadrants, {len(injections)} injection "
          f"cells, {len(escapes)} escape runs)")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_integrity.json")
        env = dict(os.environ)
        # Tiny workload: the ctest entry checks the contract, not scale.
        env.setdefault("VERO_SCALE", "0.05")
        env.setdefault("VERO_BENCH_TREES", "2")
        proc = subprocess.run([emitter, "--integrity-grid", "--report", out],
                              env=env, capture_output=True, text=True)
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout)
            sys.stderr.write(proc.stderr)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an existing report")
    parser.add_argument("--emitter", help="run fault_grid --integrity-grid")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
