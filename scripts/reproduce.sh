#!/usr/bin/env bash
# Builds the repo, runs the full test suite, and regenerates every table
# and figure of the paper's evaluation.
#
#   scripts/reproduce.sh [scale]
#
# `scale` multiplies workload sizes (default 1.0; see VERO_SCALE in README).
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${1:-1.0}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

export VERO_SCALE="$SCALE"
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] && "$b"
done 2>&1 | tee bench_output.txt
