#!/usr/bin/env python3
"""Validates the cost-anatomy JSON ("vero.anatomy.v1") emitted by RunObserver
consumers and the bench --anatomy wrapper ("vero.anatomy_bench.v1").

Two modes:

  check_anatomy.py ANATOMY.json
      Validate an already-emitted anatomy file (a single report or a bench
      wrapper with a runs[] array) against the documented schema and the
      exact-sum invariants.

  check_anatomy.py --emitter PATH/TO/anatomy_test
      Drive the anatomy_test gtest binary twice (--gtest_filter=AnatomyEmit*
      with VERO_OBS_EMIT_DIR pointing at fresh temp dirs), validate both
      emitted files, and require the deterministic projection of the two to
      be identical. Registered as the check_anatomy ctest.

The headline invariant is re-checked here in pure Python: JsonWriter emits
doubles with %.17g, which round-trips IEEE doubles exactly, and Python floats
are IEEE doubles — so the checker re-performs the canonical summations
(same operands, same association order) and demands plain equality, not an
epsilon. Schema documented in docs/observability.md. Exits non-zero with a
message on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "vero.anatomy.v1"
BENCH_SCHEMA = "vero.anatomy_bench.v1"

CATEGORY_NAMES = {
    "compute.gradient", "compute.hist_build", "compute.split_eval",
    "compute.partition", "compute.other", "compute.sketch",
    "compute.transform", "comm.total", "setup", "checkpoint", "recovery",
    "reshard", "wait.deadline_wait", "wait.straggler_absorb",
    "wait.injected_stall", "wait.barrier_skew", "wasted",
}
SEGMENT_KINDS = {"setup", "tree", "recovery", "reshard"}


def fail(msg):
    print(f"check_anatomy: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable JSON: {e}")


def check_anatomy(doc, where):
    """Validates one anatomy report; returns its deterministic projection."""
    require(isinstance(doc, dict), f"{where}: report must be an object")
    require(doc.get("schema") == SCHEMA,
            f"{where}: schema must be {SCHEMA!r}, got {doc.get('schema')!r}")
    scalar_fields = {
        "label": str, "quadrant": str, "workers": int, "trees": int,
        "incarnations": int, "total_seconds": (int, float),
        "attributed_train_seconds": (int, float), "exact": bool,
        "wasted_seconds": (int, float), "train_bytes_sent": int,
    }
    for name, types in scalar_fields.items():
        require(name in doc, f"{where}: missing {name}")
        require(isinstance(doc[name], types),
                f"{where}: {name} has wrong type")
    require(doc["incarnations"] >= 1, f"{where}: incarnations < 1")

    # Components re-sum to the total in the canonical association order,
    # bit-exactly.
    comps = doc.get("components")
    require(isinstance(comps, dict), f"{where}: missing components object")
    for name in ("setup", "train", "recovery", "reshard"):
        require(isinstance(comps.get(name), (int, float)),
                f"{where}: components.{name} missing or non-numeric")
    resummed = ((comps["setup"] + comps["train"]) + comps["recovery"]) \
        + comps["reshard"]
    require(resummed == doc["total_seconds"],
            f"{where}: components sum {resummed!r} != total_seconds "
            f"{doc['total_seconds']!r}")

    # Per-tree rows: canonical TreeCost order per row, left-to-right row sum
    # == attributed_train_seconds, both bit-exact.
    per_tree = doc.get("per_tree")
    require(isinstance(per_tree, list), f"{where}: per_tree must be an array")
    attributed = 0.0
    tree_proj = []
    for i, row in enumerate(per_tree):
        rw = f"{where}: per_tree[{i}]"
        require(isinstance(row, dict), f"{rw}: must be an object")
        for name in ("tree", "incarnation", "gradient", "hist", "find_split",
                     "node_split", "other", "comm", "total",
                     "blame_comp_rank", "blame_comm_rank"):
            require(name in row, f"{rw}: missing {name}")
        row_total = ((((row["gradient"] + row["hist"]) + row["find_split"])
                      + row["node_split"]) + row["other"]) + row["comm"]
        require(row_total == row["total"],
                f"{rw}: fields sum {row_total!r} != total {row['total']!r}")
        require(0 <= row["incarnation"] < doc["incarnations"],
                f"{rw}: incarnation out of range")
        attributed += row["total"]
        tree_proj.append((row["tree"], row["incarnation"], row["comm"]))
    require(attributed == doc["attributed_train_seconds"],
            f"{where}: row totals sum {attributed!r} != "
            f"attributed_train_seconds {doc['attributed_train_seconds']!r}")
    require(doc["exact"] ==
            (doc["attributed_train_seconds"] == comps["train"]),
            f"{where}: exact flag inconsistent with the attribution")
    require(doc["exact"], f"{where}: attribution not exact")

    # Display categories: known taxonomy, sorted by name, non-negative.
    categories = doc.get("categories")
    require(isinstance(categories, dict),
            f"{where}: categories must be an object")
    names = list(categories.keys())
    require(names == sorted(names), f"{where}: categories not sorted")
    for name, seconds in categories.items():
        require(name in CATEGORY_NAMES,
                f"{where}: unknown category {name!r}")
        require(isinstance(seconds, (int, float)) and seconds >= 0,
                f"{where}: categories[{name!r}] negative or non-numeric")

    # Per-op communication profile.
    comm_ops = doc.get("comm_ops")
    require(isinstance(comm_ops, list), f"{where}: comm_ops must be an array")
    op_proj = []
    for i, op in enumerate(comm_ops):
        ow = f"{where}: comm_ops[{i}]"
        for name in ("op", "ops", "sim_seconds", "p50", "p99"):
            require(name in op, f"{ow}: missing {name}")
        require(op["ops"] > 0, f"{ow}: zero-op entry emitted")
        require(op["sim_seconds"] >= 0, f"{ow}: negative sim_seconds")
        require(op["p50"] <= op["p99"], f"{ow}: p50 > p99")
        op_proj.append((op["op"], op["ops"]))
    op_names = [op["op"] for op in comm_ops]
    require(op_names == sorted(op_names), f"{where}: comm_ops not sorted")

    # Per-rank skew rows.
    per_rank = doc.get("per_rank")
    require(isinstance(per_rank, list), f"{where}: per_rank must be an array")
    rank_proj = []
    for i, row in enumerate(per_rank):
        rw = f"{where}: per_rank[{i}]"
        for name in ("incarnation", "rank", "comp_seconds", "comm_seconds",
                     "events", "bytes"):
            require(name in row, f"{rw}: missing {name}")
        require(row["events"] > 0, f"{rw}: empty rank row emitted")
        require(0 <= row["incarnation"] < doc["incarnations"],
                f"{rw}: incarnation out of range")
        rank_proj.append((row["incarnation"], row["rank"], row["events"],
                          row["bytes"]))

    # Critical path: never longer than the total; the single rank at W = 1
    # IS the path, so equality is bitwise there. Exported segments are the
    # heaviest first.
    cp = doc.get("critical_path")
    require(isinstance(cp, dict), f"{where}: missing critical_path object")
    require(isinstance(cp.get("length_seconds"), (int, float)),
            f"{where}: critical_path.length_seconds missing")
    require(cp["length_seconds"] <= doc["total_seconds"],
            f"{where}: critical path {cp['length_seconds']!r} exceeds total "
            f"{doc['total_seconds']!r}")
    if doc["workers"] == 1 and doc["incarnations"] == 1:
        require(cp["length_seconds"] == doc["total_seconds"],
                f"{where}: W=1 critical path {cp['length_seconds']!r} != "
                f"total {doc['total_seconds']!r}")
    segments = cp.get("segments")
    require(isinstance(segments, list),
            f"{where}: critical_path.segments must be an array")
    require(isinstance(cp.get("segments_total"), int) and
            cp["segments_total"] >= len(segments),
            f"{where}: segments_total smaller than exported segments")
    for i, seg in enumerate(segments):
        sw = f"{where}: critical_path.segments[{i}]"
        for name in ("kind", "tree", "rank", "incarnation", "seconds",
                     "dominant", "dominant_seconds"):
            require(name in seg, f"{sw}: missing {name}")
        require(seg["kind"] in SEGMENT_KINDS,
                f"{sw}: unknown kind {seg['kind']!r}")
        require(seg["dominant_seconds"] <= seg["seconds"],
                f"{sw}: dominant exceeds the segment")
        if i > 0:
            require(segments[i - 1]["seconds"] >= seg["seconds"],
                    f"{sw}: exported segments not sorted heaviest-first")

    # Stitching integrity: one weakly-connected acyclic DAG, with the vertex
    # count the construction promises (2 per span + 1 join per collective
    # group).
    dag = doc.get("dag")
    require(isinstance(dag, dict), f"{where}: missing dag object")
    for name in ("events", "vertices", "program_edges", "collective_edges",
                 "incarnation_edges", "collective_groups", "weak_components",
                 "acyclic"):
        require(name in dag, f"{where}: dag missing {name}")
    require(dag["events"] > 0, f"{where}: empty trace behind the anatomy")
    require(dag["vertices"] == 2 * dag["events"] + dag["collective_groups"],
            f"{where}: dag vertex count inconsistent")
    require(dag["weak_components"] == 1,
            f"{where}: trace stitched into {dag['weak_components']} "
            "components (expected 1)")
    require(dag["acyclic"] is True, f"{where}: causal DAG has a cycle")
    if doc["incarnations"] > 1:
        require(dag["incarnation_edges"] > 0,
                f"{where}: multi-incarnation run without incarnation joins")

    # Deterministic projection: structural identity plus the sim-clock
    # quantities (CPU-seconds fields are real measurements and excluded).
    return (doc["label"], doc["quadrant"], doc["workers"], doc["trees"],
            doc["incarnations"], doc["train_bytes_sent"], tuple(tree_proj),
            tuple(op_proj), tuple(rank_proj),
            tuple(sorted(dag.items())))


def check_file(path):
    """Validates one file; returns the list of run projections."""
    doc = load_json(path)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        runs = doc.get("runs")
        require(isinstance(runs, list), f"{path}: runs must be an array")
        require(len(runs) > 0, f"{path}: empty runs array")
        return [check_anatomy(run, f"{path}: runs[{i}]")
                for i, run in enumerate(runs)]
    return [check_anatomy(doc, path)]


def run_emitter(binary):
    """Runs the AnatomyEmit* tests into a fresh dir; returns the file path."""
    out_dir = tempfile.mkdtemp(prefix="vero_anatomy_emit_")
    env = dict(os.environ, VERO_OBS_EMIT_DIR=out_dir)
    cmd = [binary, "--gtest_filter=AnatomyEmit*"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        fail(f"emitter {' '.join(cmd)} exited {proc.returncode}")
    path = os.path.join(out_dir, "anatomy.json")
    require(os.path.exists(path), f"emitter produced no {path}")
    return path


def check_emitted(path):
    """The AnatomyEmit fixture writes one clean and one recovery+resize run."""
    projections = check_file(path)
    require(len(projections) == 2,
            f"{path}: expected 2 emitted runs, got {len(projections)}")
    labels = {p[0] for p in projections}
    require(labels == {"anatomy_emit_clean", "anatomy_emit_elastic"},
            f"{path}: unexpected run labels {labels}")
    for proj in projections:
        if proj[0] == "anatomy_emit_elastic":
            require(proj[4] >= 2,
                    f"{path}: elastic run stayed single-incarnation")
    return projections


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="ANATOMY.json file(s) to validate")
    parser.add_argument("--emitter", metavar="ANATOMY_TEST",
                        help="anatomy_test binary to drive end-to-end")
    args = parser.parse_args()

    if args.emitter:
        proj_a = check_emitted(run_emitter(args.emitter))
        proj_b = check_emitted(run_emitter(args.emitter))
        require(proj_a == proj_b,
                "deterministic anatomy projection differs between two "
                "identical seeded runs")
        print(f"check_anatomy: OK ({len(proj_a)} runs, exact attribution, "
              "deterministic projection stable across 2 runs)")
        return

    if not args.paths:
        parser.error("need ANATOMY.json or --emitter")
    total = 0
    for path in args.paths:
        total += len(check_file(path))
    print(f"check_anatomy: OK ({total} run(s), exact attribution, "
          "critical path and DAG integrity valid)")


if __name__ == "__main__":
    main()
