#!/usr/bin/env python3
"""Validates the observability layer's JSON artifacts.

Two modes:

  check_trace.py TRACE.json [REPORT.json]
      Validate an already-emitted Chrome trace (and optionally a
      "vero.run_report.v1" run report) against the documented schemas.

  check_trace.py --emitter PATH/TO/obs_test
      Drive the obs_test gtest binary twice (--gtest_filter=ObsEmit* with
      VERO_OBS_EMIT_DIR pointing at fresh temp dirs), validate both emitted
      trace/report pairs, and require the deterministic projection of the
      two traces to be identical — the executable end-to-end form of the
      "schema stable across seeded runs" guarantee. Registered as the
      check_trace ctest.

Schemas are documented in docs/observability.md. Exits non-zero with a
message on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

PHASE_NAMES = {
    "gradient", "hist-build", "find-split", "node-split", "margin-update",
    "grow-tree", "checkpoint", "checkpoint-snapshot", "recovery", "rejoin",
    "resize", "reshard",
    "sketch-build", "transform-encode", "transform-decode", "label-broadcast",
}
COLLECTIVE_NAMES = {
    "AllReduceSum", "ReduceScatterSum", "AllGather", "Broadcast", "Gather",
    "AllToAll", "Barrier",
}
CATEGORIES = {"phase", "collective", "driver"}

REPORT_SCHEMA = "vero.run_report.v1"
BENCH_SCHEMA = "vero.bench_report.v1"


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def load_json(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not parseable JSON: {e}")


def check_trace(path):
    """Validates one Chrome trace file; returns its deterministic projection."""
    doc = load_json(path)
    require(isinstance(doc, dict), f"{path}: top level must be an object")
    require("traceEvents" in doc, f"{path}: missing traceEvents")
    events = doc["traceEvents"]
    require(isinstance(events, list), f"{path}: traceEvents must be an array")
    require(len(events) > 0, f"{path}: empty trace")

    projection = []
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        require(isinstance(ev, dict), f"{where}: must be an object")
        for key in ("name", "cat", "ph", "ts", "dur", "pid", "tid", "args"):
            require(key in ev, f"{where}: missing {key}")
        require(ev["ph"] == "X", f"{where}: ph must be 'X' (complete event)")
        require(ev["cat"] in CATEGORIES,
                f"{where}: unknown category {ev['cat']!r}")
        if ev["cat"] == "collective":
            require(ev["name"] in COLLECTIVE_NAMES,
                    f"{where}: unknown collective {ev['name']!r}")
        else:
            require(ev["name"] in PHASE_NAMES,
                    f"{where}: unknown phase {ev['name']!r}")
        require(ev["ts"] >= 0 and ev["dur"] >= 0,
                f"{where}: negative wall stamps")

        args = ev["args"]
        require(isinstance(args, dict), f"{where}: args must be an object")
        for key in ("rank", "tree", "layer", "sim_begin", "sim_end",
                    "cpu_seconds", "bytes", "op_id", "incarnation"):
            require(key in args, f"{where}: args missing {key}")
        require(args["rank"] >= -1, f"{where}: bad rank")
        require(args["tree"] >= -1, f"{where}: bad tree")
        require(args["layer"] >= -1, f"{where}: bad layer")
        require(args["bytes"] >= 0, f"{where}: negative bytes")
        require(args["cpu_seconds"] >= 0, f"{where}: negative cpu_seconds")
        require(args["incarnation"] >= 0, f"{where}: negative incarnation")
        # Collective spans carry the per-rank op sequence number (the
        # cross-rank DAG join key); every other span uses the -1 sentinel.
        if ev["cat"] == "collective":
            require(args["op_id"] >= 0, f"{where}: collective without op_id")
        else:
            require(args["op_id"] == -1,
                    f"{where}: non-collective with op_id {args['op_id']}")
        # Sim stamps are either both the -1 sentinel or a sane interval.
        if args["sim_begin"] >= 0 or args["sim_end"] >= 0:
            require(args["sim_end"] >= args["sim_begin"] >= 0,
                    f"{where}: sim interval out of order")
        projection.append((ev["name"], ev["cat"], args["rank"], args["tree"],
                           args["layer"], args["sim_begin"], args["sim_end"],
                           args["bytes"], args["op_id"], args["incarnation"]))
    return projection


def check_run_report(doc, where):
    require(isinstance(doc, dict), f"{where}: report must be an object")
    require(doc.get("schema") == REPORT_SCHEMA,
            f"{where}: schema must be {REPORT_SCHEMA!r}, "
            f"got {doc.get('schema')!r}")
    scalar_fields = {
        "label": str, "quadrant": str, "workers": int, "trees": int,
        "model_digest": int,
        "train_seconds": (int, float), "comp_seconds": (int, float),
        "comm_seconds": (int, float), "setup_seconds": (int, float),
        "train_bytes_sent": int, "peak_histogram_bytes": int,
        "data_bytes": int, "wasted_bytes": int,
        "wasted_seconds": (int, float), "trace_path": str,
    }
    for name, types in scalar_fields.items():
        require(name in doc, f"{where}: missing {name}")
        require(isinstance(doc[name], types),
                f"{where}: {name} has wrong type")

    phases = doc.get("phases")
    require(isinstance(phases, dict), f"{where}: missing phases object")
    for name in ("gradient", "hist", "find_split", "node_split", "other",
                 "comm"):
        require(isinstance(phases.get(name), (int, float)),
                f"{where}: phases.{name} missing or non-numeric")
    phase_sum = sum(phases[k] for k in
                    ("gradient", "hist", "find_split", "node_split", "other"))
    require(abs(phase_sum - doc["comp_seconds"]) <=
            1e-6 * (1.0 + abs(doc["comp_seconds"])),
            f"{where}: phase totals {phase_sum} != comp_seconds "
            f"{doc['comp_seconds']}")

    recovery = doc.get("recovery")
    require(isinstance(recovery, dict), f"{where}: missing recovery object")
    for name in ("failures_observed", "recovery_attempts", "trees_recovered",
                 "trees_retrained", "final_world_size", "rejoined_workers",
                 "rendezvous_failures", "recovery_seconds", "recovery_bytes"):
        require(name in recovery, f"{where}: recovery missing {name}")

    metrics = doc.get("metrics")
    require(isinstance(metrics, dict),
            f"{where}: metrics must be an object keyed by metric name")
    for name, entry in metrics.items():
        ew = f"{where}: metrics[{name!r}]"
        require(isinstance(entry, dict), f"{ew}: must be an object")
        kind = entry.get("kind")
        require(kind in ("counter", "gauge", "histogram"),
                f"{ew}: unknown kind {kind!r}")
        if kind == "counter":
            require(isinstance(entry.get("value"), int), f"{ew}: bad value")
        elif kind == "gauge":
            require(isinstance(entry.get("value"), (int, float)),
                    f"{ew}: bad value")
        else:
            for field in ("count", "sum", "min", "max", "p50", "p99"):
                require(isinstance(entry.get(field), (int, float)),
                        f"{ew}: histogram missing {field}")
            if entry["count"] > 0:
                require(entry["min"] <= entry["p50"] <= entry["p99"]
                        <= entry["max"],
                        f"{ew}: histogram quantiles out of order")
    # json.load preserves emission order; the schema promises sorted names.
    require(list(metrics.keys()) == sorted(metrics.keys()),
            f"{where}: metrics not sorted by name")


def check_report_file(path):
    doc = load_json(path)
    if isinstance(doc, dict) and doc.get("schema") == BENCH_SCHEMA:
        runs = doc.get("runs")
        require(isinstance(runs, list), f"{path}: runs must be an array")
        for i, run in enumerate(runs):
            check_run_report(run, f"{path}: runs[{i}]")
        return len(runs)
    check_run_report(doc, path)
    return 1


def run_emitter(binary):
    """Runs the ObsEmit* tests into a fresh dir; returns (trace, report)."""
    out_dir = tempfile.mkdtemp(prefix="vero_obs_emit_")
    env = dict(os.environ, VERO_OBS_EMIT_DIR=out_dir)
    cmd = [binary, "--gtest_filter=ObsEmit*"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        fail(f"emitter {' '.join(cmd)} exited {proc.returncode}")
    trace = os.path.join(out_dir, "trace.json")
    report = os.path.join(out_dir, "report.json")
    require(os.path.exists(trace), f"emitter produced no {trace}")
    require(os.path.exists(report), f"emitter produced no {report}")
    return trace, report


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="TRACE.json [REPORT.json] to validate")
    parser.add_argument("--emitter", metavar="OBS_TEST",
                        help="obs_test binary to drive end-to-end")
    args = parser.parse_args()

    if args.emitter:
        trace_a, report_a = run_emitter(args.emitter)
        proj_a = check_trace(trace_a)
        check_report_file(report_a)
        trace_b, report_b = run_emitter(args.emitter)
        proj_b = check_trace(trace_b)
        check_report_file(report_b)
        require(proj_a == proj_b,
                "deterministic trace projection differs between two "
                "identical seeded runs")
        print(f"check_trace: OK ({len(proj_a)} events, deterministic "
              "projection stable across 2 runs, reports valid)")
        return

    if not args.paths:
        parser.error("need TRACE.json (and optional REPORT.json) "
                     "or --emitter")
    projection = check_trace(args.paths[0])
    msg = f"{len(projection)} events valid"
    if len(args.paths) > 1:
        runs = check_report_file(args.paths[1])
        msg += f", {runs} report(s) valid"
    print(f"check_trace: OK ({msg})")


if __name__ == "__main__":
    main()
