#!/usr/bin/env python3
"""Validates the compressed-communication sweep (bench/comm_sweep --json).

Two modes:

  check_bench_comm.py --json BENCH_comm.json
      Validate an already-emitted "vero.comm_bench.v1" file produced by
      comm_sweep (scripts/bench_smoke.sh uses this).

  check_bench_comm.py --emitter PATH/TO/comm_sweep
      Run the bench binary itself into a temp dir at a tiny VERO_SCALE and
      validate the result. Registered as the check_bench_comm ctest.

Beyond schema shape, this checks the CollectiveCompression contract:

  * the full density x quadrant x mode grid is present exactly once;
  * compression=off records no codec accounting at all (delegation means
    off == seed behavior, byte for byte);
  * every codec run prices fewer bytes on the wire than it moved raw, and
    the block-shape counters match the mode (lossless modes never emit
    quantized blocks; quantized never emits lossless sparse blocks);
  * at <= 10% density the lossless sparse modes cut the histogram wire
    volume by at least 2x (the headline goodput-vs-density claim), and
    total train traffic beats the uncompressed run;
  * delta index packing never loses to absolute indices, and quantization
    beats both lossless modes at full density;
  * lossless cells train the exact model compression=off trains (equal
    model digests), so the byte savings are free;
  * at 100% density no mode regresses goodput (useful bytes per modeled
    network second) by more than 5% against off — the dense-raw fallback
    keeps the frame overhead marginal.

Exits non-zero with a message on the first violation.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SCHEMA = "vero.comm_bench.v1"
MODES = ("off", "sparse", "sparse_delta", "quantized")
QUADRANTS = ("qd1", "qd2")
LOSSLESS = ("sparse", "sparse_delta")
RUN_KEYS = ("label", "quadrant", "mode", "density", "workers",
            "train_seconds", "comm_seconds", "bytes_on_wire",
            "hist_raw_bytes", "hist_wire_bytes", "blocks_dense",
            "blocks_sparse", "blocks_quantized", "model_digest", "goodput")


def fail(message):
    print(f"check_bench_comm: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot parse {path}: {e}")

    if doc.get("schema") != SCHEMA:
        fail(f"schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list) or not runs:
        fail("runs must be a non-empty list")

    cells = {}
    for i, run in enumerate(runs):
        if not isinstance(run, dict):
            fail(f"runs[{i}] is not an object")
        for key in RUN_KEYS:
            if key not in run:
                fail(f"runs[{i}] missing key {key!r}")
        label = run["label"]
        if run["train_seconds"] <= 0 or run["comm_seconds"] <= 0:
            fail(f"{label}: train/comm seconds must be positive")
        if run["goodput"] <= 0:
            fail(f"{label}: goodput must be positive")
        if run["quadrant"] not in QUADRANTS:
            fail(f"{label}: unknown quadrant {run['quadrant']!r}")
        if run["mode"] not in MODES:
            fail(f"{label}: unknown mode {run['mode']!r}")
        cell = cells.setdefault((run["quadrant"], run["density"]), {})
        if run["mode"] in cell:
            fail(f"duplicate run for {label!r}")
        cell[run["mode"]] = run

    densities = sorted({density for (_, density) in cells})
    if len(densities) < 2:
        fail(f"need at least two densities, got {densities}")
    if min(densities) > 0.1:
        fail(f"need a cell at <= 10% density, got {densities}")
    if max(densities) < 1.0:
        fail(f"need a cell at 100% density, got {densities}")
    for quadrant in QUADRANTS:
        for density in densities:
            cell = cells.get((quadrant, density))
            if cell is None:
                fail(f"missing cell {quadrant} @ density {density}")
            missing = set(MODES) - cell.keys()
            if missing:
                fail(f"cell {quadrant}@{density} missing modes: "
                     f"{sorted(missing)}")

    for (quadrant, density), cell in sorted(cells.items()):
        off = cell["off"]
        name = f"{quadrant}@{density}"

        # Delegation: compression=off must be indistinguishable from the
        # seed -- no codec accounting anywhere.
        for key in ("hist_raw_bytes", "hist_wire_bytes", "blocks_dense",
                    "blocks_sparse", "blocks_quantized"):
            if off[key] != 0:
                fail(f"{name}: off run has nonzero {key}")

        for mode in MODES[1:]:
            run = cell[mode]
            if run["hist_raw_bytes"] == 0 or run["hist_wire_bytes"] == 0:
                fail(f"{name}/{mode}: codec run recorded no histogram "
                     "traffic")
            if run["hist_wire_bytes"] >= run["hist_raw_bytes"]:
                fail(f"{name}/{mode}: wire bytes "
                     f"{run['hist_wire_bytes']} not below raw "
                     f"{run['hist_raw_bytes']}")
            blocks = (run["blocks_dense"] + run["blocks_sparse"]
                      + run["blocks_quantized"])
            if blocks == 0:
                fail(f"{name}/{mode}: no codec blocks counted")
            if mode in LOSSLESS and run["blocks_quantized"] != 0:
                fail(f"{name}/{mode}: lossless run emitted quantized "
                     "blocks")
            if mode == "quantized" and run["blocks_sparse"] != 0:
                fail(f"{name}/quantized: emitted lossless sparse blocks")

        # Lossless modes reconstruct bit-exact payloads, so the trained
        # model must be the one compression=off trains.
        for mode in LOSSLESS:
            if cell[mode]["model_digest"] != off["model_digest"]:
                fail(f"{name}/{mode}: model digest "
                     f"{cell[mode]['model_digest']} != off digest "
                     f"{off['model_digest']}")

        # Delta index packing never loses to absolute indices.
        if cell["sparse_delta"]["hist_wire_bytes"] > \
                cell["sparse"]["hist_wire_bytes"]:
            fail(f"{name}: sparse_delta wire "
                 f"{cell['sparse_delta']['hist_wire_bytes']} exceeds "
                 f"sparse wire {cell['sparse']['hist_wire_bytes']}")

        if density <= 0.1:
            # The headline claim: >= 2x fewer histogram bytes on the wire
            # at sparse workloads, visible in total train traffic too.
            for mode in LOSSLESS:
                run = cell[mode]
                if run["hist_wire_bytes"] * 2 > run["hist_raw_bytes"]:
                    fail(f"{name}/{mode}: only "
                         f"{run['hist_raw_bytes'] / run['hist_wire_bytes']:.2f}x "
                         "wire reduction, want >= 2x at <= 10% density")
                if run["bytes_on_wire"] >= off["bytes_on_wire"]:
                    fail(f"{name}/{mode}: total traffic "
                         f"{run['bytes_on_wire']} not below off "
                         f"{off['bytes_on_wire']}")

        if density == 1.0:
            # Dense fallback: goodput regression vs off stays within 5%.
            for mode in MODES[1:]:
                if cell[mode]["goodput"] < 0.95 * off["goodput"]:
                    fail(f"{name}/{mode}: goodput "
                         f"{cell[mode]['goodput']:.3g} regresses more "
                         f"than 5% vs off {off['goodput']:.3g}")
            # Lossy quantization out-compresses both lossless modes once
            # the bins fill up.
            for mode in LOSSLESS:
                if cell["quantized"]["hist_wire_bytes"] >= \
                        cell[mode]["hist_wire_bytes"]:
                    fail(f"{name}: quantized wire "
                         f"{cell['quantized']['hist_wire_bytes']} not "
                         f"below {mode} wire "
                         f"{cell[mode]['hist_wire_bytes']}")

    print(f"check_bench_comm: OK ({path}: {len(runs)} runs, "
          f"{len(cells)} cells, densities {densities})")


def run_emitter(emitter):
    with tempfile.TemporaryDirectory() as tmp:
        out = os.path.join(tmp, "BENCH_comm.json")
        env = dict(os.environ)
        env.setdefault("VERO_SCALE", "0.05")
        proc = subprocess.run([emitter, "--json", out],
                              stdout=subprocess.PIPE,
                              stderr=subprocess.STDOUT, env=env)
        if proc.returncode != 0:
            sys.stdout.buffer.write(proc.stdout)
            fail(f"emitter exited with {proc.returncode}")
        validate(out)


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--json", help="validate an emitted comm report")
    parser.add_argument("--emitter", help="run comm_sweep --json")
    args = parser.parse_args()
    if bool(args.json) == bool(args.emitter):
        parser.error("pass exactly one of --json / --emitter")
    if args.json:
        validate(args.json)
    else:
        run_emitter(args.emitter)


if __name__ == "__main__":
    main()
