#!/usr/bin/env bash
# Seconds-scale perf smoke for the histogram kernels: runs the micro_kernels
# --hist-json snapshot (dims x threads grid + the seed scalar baselines) and
# validates the emitted BENCH_histogram.json schema, then runs the
# straggler-mitigation fault grid (with per-run traces, validated down to a
# recovery run's trace), the integrity sweep (silent-corruption
# detection/blame/heal contract validated from the report's integrity
# blocks and model digests) and the cost-anatomy sweep (validating the
# emitted "vero.anatomy_bench.v1" exact-sum report). Compare snapshots across commits
# to catch regressions; see docs/performance.md, docs/straggler_mitigation.md
# and docs/observability.md.
#
#   scripts/bench_smoke.sh [build-dir] [out.json] [faults-out.json] [anatomy-out.json] [integrity-out.json] [comm-out.json] [serve-out.json]
#
# VERO_SCALE shrinks/grows the workload (default 0.25 here: ~5k rows keeps
# the binary-search baseline to well under a minute on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_histogram.json}"
FAULTS_OUT="${3:-BENCH_faults.json}"
ANATOMY_OUT="${4:-BENCH_anatomy.json}"
INTEGRITY_OUT="${5:-BENCH_integrity.json}"
COMM_OUT="${6:-BENCH_comm.json}"
SERVE_OUT="${7:-BENCH_serve.json}"
export VERO_SCALE="${VERO_SCALE:-0.25}"

"$BUILD_DIR/bench/micro_kernels" --hist-json "$OUT"
python3 scripts/check_bench_hist.py --json "$OUT"

TRACE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/vero_smoke_traces.XXXXXX")"
trap 'rm -rf "$TRACE_DIR"' EXIT
"$BUILD_DIR/bench/fault_grid" --fault-grid --report "$FAULTS_OUT" \
    --trace-dir "$TRACE_DIR"
python3 scripts/check_bench_faults.py --json "$FAULTS_OUT"
# Validate a trace captured under an actual fault-grid recovery run ("rg-"
# labels are the recovery-grid cells with crashes / resizes): driver
# recovery / resize / reshard spans and cross-incarnation op ids must pass
# the same schema checks as clean-run traces.
RECOVERY_TRACE="$(ls "$TRACE_DIR"/*-rg-*.trace.json 2>/dev/null | head -n 1)"
if [[ -z "$RECOVERY_TRACE" ]]; then
    echo "bench_smoke: no rg-* recovery trace emitted by fault_grid" >&2
    exit 1
fi
python3 scripts/check_trace.py "$RECOVERY_TRACE"

# Integrity sweep: clean runs bit-identical across integrity levels,
# injected silent corruption / poison detected with the faulty rank blamed
# and the model healed, and a wrong model provably escaping at
# integrity=off — all validated from the report's integrity blocks and
# model digests.
"$BUILD_DIR/bench/fault_grid" --integrity-grid --report "$INTEGRITY_OUT"
python3 scripts/check_bench_integrity.py --json "$INTEGRITY_OUT"

"$BUILD_DIR/bench/anatomy_sweep" --anatomy "$ANATOMY_OUT"
python3 scripts/check_anatomy.py "$ANATOMY_OUT"

# Compressed-communication sweep: goodput vs histogram density under the
# CollectiveCompression codec — off cells free of codec accounting, the
# sparse modes >=2x fewer bytes on the wire at <=10% density with the model
# digests unchanged, and bounded goodput regression at full density.
"$BUILD_DIR/bench/comm_sweep" --json "$COMM_OUT"
python3 scripts/check_bench_comm.py --json "$COMM_OUT"

# Serving sweep: flat-forest batched scoring vs the per-row path over batch
# x threads x forest size x C, digest-checked for bit-identical margins in
# every cell; at full scale (>= 0.25) the checker also enforces the >= 5x
# batched-vs-per-row bar on the 8-tree forests (see docs/serving.md).
"$BUILD_DIR/bench/serve_sweep" --json "$SERVE_OUT"
python3 scripts/check_bench_serve.py --json "$SERVE_OUT"
