#!/usr/bin/env bash
# Seconds-scale perf smoke for the histogram kernels: runs the micro_kernels
# --hist-json snapshot (dims x threads grid + the seed scalar baselines) and
# validates the emitted BENCH_histogram.json schema, then runs the
# straggler-mitigation fault grid and validates its goodput comparison.
# Compare snapshots across commits to catch regressions; see
# docs/performance.md and docs/straggler_mitigation.md.
#
#   scripts/bench_smoke.sh [build-dir] [out.json] [faults-out.json]
#
# VERO_SCALE shrinks/grows the workload (default 0.25 here: ~5k rows keeps
# the binary-search baseline to well under a minute on one core).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_histogram.json}"
FAULTS_OUT="${3:-BENCH_faults.json}"
export VERO_SCALE="${VERO_SCALE:-0.25}"

"$BUILD_DIR/bench/micro_kernels" --hist-json "$OUT"
python3 scripts/check_bench_hist.py --json "$OUT"

"$BUILD_DIR/bench/fault_grid" --fault-grid --report "$FAULTS_OUT"
python3 scripts/check_bench_faults.py --json "$FAULTS_OUT"
