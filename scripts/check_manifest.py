#!/usr/bin/env python3
"""Validates the on-disk checkpoint-manifest schema (docs/fault_tolerance.md).

Two modes:

  check_manifest.py CHECKPOINT_DIR
      Validate an existing rotated checkpoint directory: parse MANIFEST.vckm
      against the documented wire format (magic "VCKM", version 1, entry
      table, CRC-32 trailer), then cross-check every listed chain file's
      existence, size, and whole-file CRC, plus the latest.vckp alias.

  check_manifest.py --emitter PATH/TO/checkpoint_rotation_test
      Drive the checkpoint_rotation_test gtest binary twice
      (--gtest_filter=ManifestEmit* with VERO_CKPT_EMIT_DIR pointing at
      fresh temp dirs), validate both emitted directories, and require the
      deterministic projection (file names, trees_done, sizes, CRCs) to be
      identical across the two runs. Registered as the check_manifest ctest,
      mirroring check_trace.

This is an independent reimplementation of the reader: it shares no code
with src/quadrants/checkpoint.cc, so it catches accidental format drift
that a C++ round-trip test cannot. Exits non-zero on the first violation.
"""

import argparse
import os
import struct
import subprocess
import sys
import tempfile
import zlib

MANIFEST_MAGIC = 0x56434B4D  # "VCKM"
CHECKPOINT_MAGIC = 0x56434B50  # "VCKP"
DELTA_MAGIC = 0x56434B44  # "VCKD"
VERSION = 1
MANIFEST_VERSIONS = (1, 2)  # v2 adds per-entry kind + base_trees.
KIND_FULL = 0
KIND_DELTA = 1
MANIFEST_NAME = "MANIFEST.vckm"
LATEST_NAME = "latest.vckp"


def fail(msg):
    print(f"check_manifest: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


class Reader:
    """Bounds-checked little-endian cursor over one file's bytes."""

    def __init__(self, data, where):
        self.data = data
        self.pos = 0
        self.where = where

    def take(self, n, what):
        require(self.pos + n <= len(self.data),
                f"{self.where}: truncated reading {what} "
                f"(need {n} bytes at offset {self.pos}, "
                f"have {len(self.data)})")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def u8(self, what):
        return self.take(1, what)[0]

    def u32(self, what):
        return struct.unpack("<I", self.take(4, what))[0]

    def u64(self, what):
        return struct.unpack("<Q", self.take(8, what))[0]

    def string(self, what):
        n = self.u32(f"{what} length")
        require(n <= len(self.data) - self.pos,
                f"{self.where}: {what} length {n} overruns file")
        return self.take(n, what).decode("utf-8", errors="strict")


def parse_manifest(path):
    """Parses MANIFEST.vckm; returns the entry list (oldest first)."""
    with open(path, "rb") as f:
        data = f.read()
    r = Reader(data, path)
    require(r.u32("magic") == MANIFEST_MAGIC, f"{path}: bad magic")
    version = r.u32("version")
    require(version in MANIFEST_VERSIONS, f"{path}: unsupported version")
    count = r.u32("entry count")
    entries = []
    for i in range(count):
        what = f"entry[{i}]"
        entry = {
            "file": r.string(f"{what} file"),
            "trees_done": r.u32(f"{what} trees_done"),
            "bytes": r.u64(f"{what} bytes"),
            "crc32": r.u32(f"{what} crc32"),
            # v1 manifests predate delta chains: every entry is full.
            "kind": KIND_FULL,
            "base_trees": 0,
        }
        if version >= 2:
            entry["kind"] = r.u8(f"{what} kind")
            entry["base_trees"] = r.u32(f"{what} base_trees")
            require(entry["kind"] in (KIND_FULL, KIND_DELTA),
                    f"{path}: {what} unknown kind {entry['kind']}")
        entries.append(entry)
    trailer = r.u32("CRC trailer")
    require(r.pos == len(data),
            f"{path}: {len(data) - r.pos} trailing bytes after CRC trailer")
    computed = zlib.crc32(data[:len(data) - 4]) & 0xFFFFFFFF
    require(trailer == computed,
            f"{path}: CRC trailer {trailer:#010x} != computed "
            f"{computed:#010x}")
    return entries


def check_chain_file(path, expected_kind):
    """Validates one chain file's framing: magic (full "VCKP" or delta
    "VCKD" per the manifest's kind), version, own CRC trailer. Returns
    (data, header) where header holds the fields shared by both formats."""
    with open(path, "rb") as f:
        data = f.read()
    require(len(data) >= 16, f"{path}: too short to be a checkpoint")
    magic, version, trees_done = struct.unpack_from("<III", data, 0)
    expected_magic = (DELTA_MAGIC if expected_kind == KIND_DELTA
                      else CHECKPOINT_MAGIC)
    require(magic == expected_magic,
            f"{path}: magic {magic:#010x} does not match manifest kind "
            f"{expected_kind}")
    require(version == VERSION, f"{path}: unsupported checkpoint version")
    (trailer,) = struct.unpack_from("<I", data, len(data) - 4)
    computed = zlib.crc32(data[:len(data) - 4]) & 0xFFFFFFFF
    require(trailer == computed, f"{path}: checkpoint CRC trailer mismatch")
    header = {"trees_done": trees_done}
    if expected_kind == KIND_DELTA:
        require(len(data) >= 24, f"{path}: delta file too short")
        base_trees, count = struct.unpack_from("<II", data, 12)
        require(base_trees < trees_done,
                f"{path}: delta base_trees {base_trees} >= trees_done "
                f"{trees_done}")
        require(count == trees_done - base_trees,
                f"{path}: delta tree count {count} != trees_done - "
                f"base_trees")
        header["base_trees"] = base_trees
    return data, header


def check_dir(dir_path):
    """Validates a checkpoint directory; returns its projection."""
    require(os.path.isdir(dir_path), f"{dir_path}: not a directory")
    manifest_path = os.path.join(dir_path, MANIFEST_NAME)
    require(os.path.exists(manifest_path), f"missing {manifest_path}")
    entries = parse_manifest(manifest_path)
    require(len(entries) > 0, f"{manifest_path}: empty manifest")

    prev_index = -1
    prev_entry = None
    for entry in entries:
        name = entry["file"]
        where = f"{manifest_path}: entry {name!r}"
        require(name.startswith("ckpt-") and name.endswith(".vckp")
                and len(name) == 16,
                f"{where}: not a chain file name")
        index = int(name[5:11])
        require(index > prev_index,
                f"{where}: chain indices not strictly increasing")
        prev_index = index

        # Delta-chain invariants: a delta extends the immediately preceding
        # manifest entry, and the retained chain always starts at a full
        # anchor (GC never strands a delta suffix).
        if entry["kind"] == KIND_DELTA:
            require(prev_entry is not None,
                    f"{where}: delta entry with no preceding chain entry")
            require(entry["base_trees"] == prev_entry["trees_done"],
                    f"{where}: delta base_trees {entry['base_trees']} != "
                    f"previous entry trees_done {prev_entry['trees_done']}")
            require(entry["trees_done"] > entry["base_trees"],
                    f"{where}: delta does not advance the tree count")
        else:
            require(entry["base_trees"] == 0,
                    f"{where}: full entry with nonzero base_trees")
        prev_entry = entry

        path = os.path.join(dir_path, name)
        require(os.path.exists(path), f"{where}: listed file missing")
        data, header = check_chain_file(path, entry["kind"])
        require(len(data) == entry["bytes"],
                f"{where}: size {len(data)} != manifest {entry['bytes']}")
        whole_crc = zlib.crc32(data) & 0xFFFFFFFF
        require(whole_crc == entry["crc32"],
                f"{where}: whole-file CRC {whole_crc:#010x} != manifest "
                f"{entry['crc32']:#010x}")
        require(header["trees_done"] == entry["trees_done"],
                f"{where}: file trees_done {header['trees_done']} != "
                f"manifest {entry['trees_done']}")
        if entry["kind"] == KIND_DELTA:
            require(header["base_trees"] == entry["base_trees"],
                    f"{where}: file base_trees {header['base_trees']} != "
                    f"manifest {entry['base_trees']}")

    # The alias duplicates the newest committed chain file byte-for-byte.
    latest_path = os.path.join(dir_path, LATEST_NAME)
    require(os.path.exists(latest_path), f"missing {latest_path}")
    with open(os.path.join(dir_path, entries[-1]["file"]), "rb") as f:
        newest = f.read()
    with open(latest_path, "rb") as f:
        alias = f.read()
    require(alias == newest,
            f"{latest_path}: alias differs from newest chain file "
            f"{entries[-1]['file']}")

    return [(e["file"], e["trees_done"], e["bytes"], e["crc32"], e["kind"],
             e["base_trees"])
            for e in entries]


def run_emitter(binary):
    """Runs ManifestEmit* into a fresh dir; returns the directory path."""
    out_dir = tempfile.mkdtemp(prefix="vero_ckpt_emit_")
    env = dict(os.environ, VERO_CKPT_EMIT_DIR=out_dir)
    cmd = [binary, "--gtest_filter=ManifestEmit*"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        fail(f"emitter {' '.join(cmd)} exited {proc.returncode}")
    return out_dir


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="*",
                        help="checkpoint directory to validate")
    parser.add_argument("--emitter", metavar="CHECKPOINT_ROTATION_TEST",
                        help="checkpoint_rotation_test binary to drive")
    args = parser.parse_args()

    if args.emitter:
        def emit_projection():
            out_dir = run_emitter(args.emitter)
            proj = check_dir(out_dir)
            # The emitter also writes a delta-mode chain into "delta/" so
            # the v2 kind/base_trees columns get external validation.
            delta_dir = os.path.join(out_dir, "delta")
            require(os.path.isdir(delta_dir),
                    f"{out_dir}: emitter wrote no delta-mode chain")
            delta_proj = check_dir(delta_dir)
            require(any(e[4] == KIND_DELTA for e in delta_proj),
                    f"{delta_dir}: delta-mode chain has no delta entries")
            return proj + delta_proj

        proj_a = emit_projection()
        proj_b = emit_projection()
        require(proj_a == proj_b,
                "deterministic manifest projection differs between two "
                "identical runs")
        print(f"check_manifest: OK ({len(proj_a)} chain entries, projection "
              "stable across 2 runs)")
        return

    if not args.paths:
        parser.error("need a checkpoint directory or --emitter")
    total = 0
    for path in args.paths:
        total += len(check_dir(path))
    print(f"check_manifest: OK ({total} chain entries across "
          f"{len(args.paths)} dir(s))")


if __name__ == "__main__":
    main()
