#include "common/bitmap.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

TEST(BitmapTest, StartsAllZero) {
  Bitmap b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Count(), 0u);
  for (size_t i = 0; i < 100; ++i) EXPECT_FALSE(b.Get(i));
}

TEST(BitmapTest, SetClearAssign) {
  Bitmap b(70);
  b.Set(0);
  b.Set(63);
  b.Set(64);
  b.Set(69);
  EXPECT_TRUE(b.Get(0));
  EXPECT_TRUE(b.Get(63));
  EXPECT_TRUE(b.Get(64));
  EXPECT_TRUE(b.Get(69));
  EXPECT_EQ(b.Count(), 4u);
  b.Clear(63);
  EXPECT_FALSE(b.Get(63));
  b.Assign(1, true);
  b.Assign(0, false);
  EXPECT_TRUE(b.Get(1));
  EXPECT_FALSE(b.Get(0));
  // Remaining set bits: {1, 64, 69}.
  EXPECT_EQ(b.Count(), 3u);
}

TEST(BitmapTest, ResetZeroes) {
  Bitmap b(130);
  for (size_t i = 0; i < 130; i += 3) b.Set(i);
  b.Reset();
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.size(), 130u);
}

TEST(BitmapTest, SerializedBytesIsCeilDiv8) {
  EXPECT_EQ(Bitmap(0).SerializedBytes(), 0u);
  EXPECT_EQ(Bitmap(1).SerializedBytes(), 1u);
  EXPECT_EQ(Bitmap(8).SerializedBytes(), 1u);
  EXPECT_EQ(Bitmap(9).SerializedBytes(), 2u);
  EXPECT_EQ(Bitmap(64).SerializedBytes(), 8u);
  EXPECT_EQ(Bitmap(1000).SerializedBytes(), 125u);
}

TEST(BitmapTest, TheThirtyTwoTimesReduction) {
  // §4.2.2: a bitmap placement is 32x smaller than 4-byte-per-instance ids.
  const size_t n = 1 << 20;
  EXPECT_EQ(Bitmap(n).SerializedBytes() * 32, n * sizeof(uint32_t));
}

TEST(BitmapTest, SerializeRoundTrip) {
  Bitmap b(77);
  for (size_t i = 0; i < 77; i += 2) b.Set(i);
  std::vector<uint8_t> bytes;
  b.SerializeTo(&bytes);
  EXPECT_EQ(bytes.size(), b.SerializedBytes());
  Bitmap c;
  ASSERT_TRUE(Bitmap::Deserialize(bytes.data(), bytes.size(), 77, &c));
  EXPECT_EQ(b, c);
}

TEST(BitmapTest, DeserializeRejectsShortBuffer) {
  std::vector<uint8_t> bytes(5, 0xFF);
  Bitmap c;
  EXPECT_FALSE(Bitmap::Deserialize(bytes.data(), bytes.size(), 100, &c));
}

TEST(BitmapTest, DeserializeMasksTailGarbage) {
  // Extra bits beyond num_bits in the last byte must not leak into Count.
  std::vector<uint8_t> bytes = {0xFF};
  Bitmap c;
  ASSERT_TRUE(Bitmap::Deserialize(bytes.data(), bytes.size(), 3, &c));
  EXPECT_EQ(c.Count(), 3u);
  EXPECT_EQ(c.size(), 3u);
}

TEST(BitmapTest, AppendSerializationConcatenates) {
  Bitmap a(10), b(20);
  a.Set(1);
  b.Set(19);
  std::vector<uint8_t> bytes;
  a.SerializeTo(&bytes);
  const size_t a_bytes = bytes.size();
  b.SerializeTo(&bytes);
  Bitmap a2, b2;
  ASSERT_TRUE(Bitmap::Deserialize(bytes.data(), bytes.size(), 10, &a2));
  ASSERT_TRUE(Bitmap::Deserialize(bytes.data() + a_bytes,
                                  bytes.size() - a_bytes, 20, &b2));
  EXPECT_EQ(a, a2);
  EXPECT_EQ(b, b2);
}

class BitmapPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitmapPropertyTest, RandomRoundTripPreservesEveryBit) {
  const size_t n = GetParam();
  Rng rng(n * 31 + 7);
  Bitmap b(n);
  std::vector<bool> expected(n);
  for (size_t i = 0; i < n; ++i) {
    expected[i] = rng.Bernoulli(0.4);
    b.Assign(i, expected[i]);
  }
  std::vector<uint8_t> bytes;
  b.SerializeTo(&bytes);
  Bitmap c;
  ASSERT_TRUE(Bitmap::Deserialize(bytes.data(), bytes.size(), n, &c));
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(c.Get(i), expected[i]) << "bit " << i;
    count += expected[i];
  }
  EXPECT_EQ(c.Count(), count);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitmapPropertyTest,
                         ::testing::Values(1, 7, 8, 63, 64, 65, 127, 128, 1000,
                                           4096));

}  // namespace
}  // namespace vero
