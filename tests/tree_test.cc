#include "core/tree.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace vero {
namespace {

TEST(NodeIdTest, HeapNavigation) {
  EXPECT_EQ(LeftChild(0), 1);
  EXPECT_EQ(RightChild(0), 2);
  EXPECT_EQ(Parent(1), 0);
  EXPECT_EQ(Parent(2), 0);
  EXPECT_EQ(Sibling(1), 2);
  EXPECT_EQ(Sibling(2), 1);
  EXPECT_TRUE(IsLeftChild(1));
  EXPECT_FALSE(IsLeftChild(2));
  EXPECT_EQ(Parent(LeftChild(5)), 5);
}

Tree MakeStump() {
  // Root splits on feature 3 at value 1.5 (bin 2); missing goes right.
  Tree tree(3, 1);
  tree.SetSplit(0, 3, 1.5f, 2, /*default_left=*/false, 1.0);
  tree.SetLeaf(1, {-1.0f});
  tree.SetLeaf(2, {2.0f});
  return tree;
}

TEST(TreeTest, FreshTreeIsRootLeaf) {
  Tree tree(4, 2);
  EXPECT_TRUE(tree.Exists(0));
  EXPECT_FALSE(tree.Exists(1));
  EXPECT_EQ(tree.NumLeaves(), 1u);
  EXPECT_EQ(tree.max_nodes(), 15u);
}

TEST(TreeTest, SetSplitCreatesChildren) {
  Tree tree = MakeStump();
  EXPECT_TRUE(tree.Exists(1));
  EXPECT_TRUE(tree.Exists(2));
  EXPECT_EQ(tree.NumLeaves(), 2u);
  EXPECT_EQ(tree.NumNodes(), 3u);
  EXPECT_EQ(tree.node(0).feature, 3u);
}

TEST(TreeTest, RouteByValue) {
  Tree tree = MakeStump();
  const std::vector<FeatureId> f = {1, 3};
  const std::vector<float> low = {9.0f, 1.0f};
  const std::vector<float> high = {9.0f, 3.0f};
  EXPECT_EQ(tree.Route({f.data(), 2}, {low.data(), 2}), 1);
  EXPECT_EQ(tree.Route({f.data(), 2}, {high.data(), 2}), 2);
}

TEST(TreeTest, RouteBoundaryGoesLeft) {
  Tree tree = MakeStump();
  const std::vector<FeatureId> f = {3};
  const std::vector<float> v = {1.5f};  // v <= split_value goes left.
  EXPECT_EQ(tree.Route({f.data(), 1}, {v.data(), 1}), 1);
}

TEST(TreeTest, RouteMissingUsesDefault) {
  Tree tree = MakeStump();
  const std::vector<FeatureId> f = {1};  // Feature 3 absent.
  const std::vector<float> v = {0.5f};
  EXPECT_EQ(tree.Route({f.data(), 1}, {v.data(), 1}), 2);  // default right
}

TEST(TreeTest, PredictIntoAccumulatesScaled) {
  Tree tree = MakeStump();
  const std::vector<FeatureId> f = {3};
  const std::vector<float> v = {0.0f};
  double margin = 10.0;
  tree.PredictInto({f.data(), 1}, {v.data(), 1}, 0.5, &margin);
  EXPECT_DOUBLE_EQ(margin, 10.0 + 0.5 * -1.0);
}

TEST(TreeTest, MultiDimLeaves) {
  Tree tree(2, 3);
  tree.SetLeaf(0, {1.0f, 2.0f, 3.0f});
  double margins[3] = {0, 0, 0};
  tree.PredictInto({}, {}, 1.0, margins);
  EXPECT_DOUBLE_EQ(margins[2], 3.0);
}

TEST(TreeTest, SerializeRoundTrip) {
  Tree tree = MakeStump();
  ByteWriter w;
  tree.SerializeTo(&w);
  ByteReader r(w.data());
  Tree loaded;
  ASSERT_TRUE(Tree::Deserialize(&r, &loaded).ok());
  EXPECT_TRUE(tree == loaded);
  const std::vector<FeatureId> f = {3};
  const std::vector<float> v = {3.0f};
  EXPECT_EQ(loaded.Route({f.data(), 1}, {v.data(), 1}), 2);
}

TEST(TreeTest, DeserializeRejectsGarbage) {
  ByteWriter w;
  w.WriteU32(99);  // max_layers out of range
  w.WriteU32(1);
  w.WriteU32(0);
  ByteReader r(w.data());
  Tree t;
  EXPECT_FALSE(Tree::Deserialize(&r, &t).ok());
}

TEST(TreeDeathTest, SplitBeyondCapacityDies) {
  Tree tree(2, 1);  // Only root + 2 children fit.
  tree.SetSplit(0, 0, 1.0f, 0, false, 0.0);
  EXPECT_DEATH(tree.SetSplit(1, 0, 1.0f, 0, false, 0.0), "depth");
}

TEST(GbdtModelTest, PredictSumsTrees) {
  GbdtModel model(Task::kRegression, 1, 0.5);
  {
    Tree t(2, 1);
    t.SetLeaf(0, {2.0f});
    model.AddTree(std::move(t));
  }
  {
    Tree t(2, 1);
    t.SetLeaf(0, {3.0f});
    model.AddTree(std::move(t));
  }
  double margin = 0.0;
  model.PredictMargins({}, {}, &margin);
  EXPECT_DOUBLE_EQ(margin, 0.5 * (2.0 + 3.0));
}

TEST(GbdtModelTest, PredictProbaBinary) {
  GbdtModel model(Task::kBinary, 2, 1.0);
  Tree t(2, 1);
  t.SetLeaf(0, {0.0f});
  model.AddTree(std::move(t));
  double proba = 0.0;
  model.PredictProba({}, {}, &proba);
  EXPECT_DOUBLE_EQ(proba, 0.5);
}

TEST(GbdtModelTest, PredictProbaMultiClassNormalizes) {
  GbdtModel model(Task::kMultiClass, 3, 1.0);
  Tree t(2, 3);
  t.SetLeaf(0, {1.0f, 2.0f, 0.5f});
  model.AddTree(std::move(t));
  double proba[3];
  model.PredictProba({}, {}, proba);
  EXPECT_NEAR(proba[0] + proba[1] + proba[2], 1.0, 1e-12);
  EXPECT_GT(proba[1], proba[0]);
}

TEST(GbdtModelTest, SerializeRoundTrip) {
  GbdtModel model(Task::kMultiClass, 3, 0.1);
  Tree t(3, 3);
  t.SetSplit(0, 1, 0.5f, 1, true, 2.0);
  t.SetLeaf(1, {1.0f, 0.0f, -1.0f});
  t.SetLeaf(2, {0.0f, 1.0f, 0.0f});
  model.AddTree(std::move(t));
  ByteWriter w;
  model.SerializeTo(&w);
  ByteReader r(w.data());
  GbdtModel loaded;
  ASSERT_TRUE(GbdtModel::Deserialize(&r, &loaded).ok());
  EXPECT_EQ(loaded.num_trees(), 1u);
  EXPECT_EQ(loaded.task(), Task::kMultiClass);
  EXPECT_EQ(loaded.num_classes(), 3u);
  EXPECT_DOUBLE_EQ(loaded.learning_rate(), 0.1);
  EXPECT_TRUE(loaded.tree(0) == model.tree(0));
}

}  // namespace
}  // namespace vero
