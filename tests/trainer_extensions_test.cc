#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n = 3000, uint32_t d = 30, uint64_t seed = 5,
                 uint32_t classes = 2) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = classes;
  config.density = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config);
}

GbdtParams BaseParams() {
  GbdtParams params;
  params.num_trees = 10;
  params.num_layers = 5;
  params.num_candidate_splits = 16;
  return params;
}

// ---- Leaf-wise growth ----------------------------------------------------

TEST(LeafWiseTest, RespectsLeafBudget) {
  const Dataset train = MakeData();
  GbdtParams params = BaseParams();
  params.growth = GrowthPolicy::kLeafWise;
  params.num_layers = 10;  // Deep cap; the leaf budget is the constraint.
  params.max_leaves = 7;
  Trainer trainer(params);
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  for (size_t t = 0; t < model->num_trees(); ++t) {
    EXPECT_LE(model->tree(t).NumLeaves(), 7u);
    EXPECT_GE(model->tree(t).NumLeaves(), 2u);
  }
}

TEST(LeafWiseTest, RespectsDepthCap) {
  const Dataset train = MakeData();
  GbdtParams params = BaseParams();
  params.growth = GrowthPolicy::kLeafWise;
  params.num_layers = 3;  // At most 4 leaves at depth <= 2.
  params.max_leaves = 64;
  Trainer trainer(params);
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  for (size_t t = 0; t < model->num_trees(); ++t) {
    EXPECT_LE(model->tree(t).NumLeaves(), 4u);
  }
}

TEST(LeafWiseTest, MatchesLevelWiseQualityOnEasyData) {
  const Dataset data = MakeData(5000, 40, 11);
  const auto [train, valid] = data.SplitTail(0.25);
  GbdtParams level = BaseParams();
  GbdtParams leaf = BaseParams();
  leaf.growth = GrowthPolicy::kLeafWise;
  auto level_model = Trainer(level).Train(train);
  auto leaf_model = Trainer(leaf).Train(train);
  ASSERT_TRUE(level_model.ok() && leaf_model.ok());
  const double level_auc = EvaluateModel(*level_model, valid).value;
  const double leaf_auc = EvaluateModel(*leaf_model, valid).value;
  EXPECT_GT(leaf_auc, 0.65);
  EXPECT_NEAR(leaf_auc, level_auc, 0.1);
}

TEST(LeafWiseTest, WithFullBudgetExpandsSameOrMoreGainThanLevelWise) {
  // With the same leaf budget as level-wise capacity, leaf-wise picks the
  // globally best splits first; total train loss should be <= comparable.
  const Dataset train = MakeData(2000, 20, 13);
  GbdtParams leaf = BaseParams();
  leaf.growth = GrowthPolicy::kLeafWise;
  leaf.num_trees = 5;
  GbdtParams level = BaseParams();
  level.num_trees = 5;
  double leaf_loss = 0.0, level_loss = 0.0;
  Trainer(leaf).Train(train, nullptr, [&](const IterationStats& it) {
    leaf_loss = it.train_loss;
  });
  Trainer(level).Train(train, nullptr, [&](const IterationStats& it) {
    level_loss = it.train_loss;
  });
  EXPECT_LT(leaf_loss, level_loss * 1.05);
}

TEST(LeafWiseTest, DeterministicAcrossRuns) {
  const Dataset train = MakeData(1000, 15, 17);
  GbdtParams params = BaseParams();
  params.growth = GrowthPolicy::kLeafWise;
  params.max_leaves = 10;
  auto a = Trainer(params).Train(train);
  auto b = Trainer(params).Train(train);
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t t = 0; t < a->num_trees(); ++t) {
    EXPECT_TRUE(a->tree(t) == b->tree(t));
  }
}

// ---- Subsampling -----------------------------------------------------------

TEST(SubsampleTest, RowSubsampleStillLearns) {
  const Dataset data = MakeData(6000, 40, 19);
  const auto [train, valid] = data.SplitTail(0.25);
  GbdtParams params = BaseParams();
  params.row_subsample = 0.5;
  params.num_trees = 20;
  auto model = Trainer(params).Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, valid).value, 0.7);
}

TEST(SubsampleTest, ColumnSubsampleOnlyUsesSampledFeatures) {
  const Dataset train = MakeData(2000, 50, 23);
  GbdtParams params = BaseParams();
  params.column_subsample = 0.2;
  params.num_trees = 1;  // One tree uses exactly one feature sample.
  auto model = Trainer(params).Train(train);
  ASSERT_TRUE(model.ok());
  const auto counts = model->FeatureImportance(
      train.num_features(), GbdtModel::ImportanceType::kSplitCount);
  uint32_t used = 0;
  for (double c : counts) used += (c > 0);
  EXPECT_LE(used, 10u);  // At most 20% of 50 features.
  EXPECT_GE(used, 1u);
}

TEST(SubsampleTest, DifferentSeedsDifferentTrees) {
  const Dataset train = MakeData(2000, 30, 29);
  GbdtParams a = BaseParams();
  a.row_subsample = 0.5;
  a.num_trees = 3;
  GbdtParams b = a;
  b.seed = a.seed + 1;
  auto ma = Trainer(a).Train(train);
  auto mb = Trainer(b).Train(train);
  ASSERT_TRUE(ma.ok() && mb.ok());
  bool any_diff = false;
  for (size_t t = 0; t < ma->num_trees(); ++t) {
    if (!(ma->tree(t) == mb->tree(t))) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(SubsampleTest, InvalidFractionsRejected) {
  GbdtParams params = BaseParams();
  params.row_subsample = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = BaseParams();
  params.column_subsample = 1.5;
  EXPECT_FALSE(params.Validate().ok());
  params = BaseParams();
  params.max_leaves = 1;
  EXPECT_FALSE(params.Validate().ok());
}

// ---- Early stopping ----------------------------------------------------------

TEST(EarlyStoppingTest, RequiresValidationSet) {
  GbdtParams params = BaseParams();
  params.early_stopping_rounds = 3;
  Trainer trainer(params);
  EXPECT_EQ(trainer.Train(MakeData(500)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EarlyStoppingTest, StopsOnPlateau) {
  // Pure-noise labels: the validation AUC cannot improve systematically, so
  // training must stop well before the full budget.
  SyntheticConfig config;
  config.num_instances = 2000;
  config.num_features = 10;
  config.label_noise = 1000.0;  // Labels dominated by noise.
  config.seed = 31;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, valid] = data.SplitTail(0.5);
  GbdtParams params = BaseParams();
  params.num_trees = 200;
  params.early_stopping_rounds = 5;
  Trainer trainer(params);
  auto model = trainer.Train(train, &valid);
  ASSERT_TRUE(model.ok());
  EXPECT_LT(model->num_trees(), 200u);
}

TEST(EarlyStoppingTest, DoesNotStopWhileImproving) {
  const Dataset data = MakeData(5000, 40, 37);
  const auto [train, valid] = data.SplitTail(0.25);
  GbdtParams params = BaseParams();
  params.num_trees = 15;
  params.early_stopping_rounds = 10;
  Trainer trainer(params);
  auto model = trainer.Train(train, &valid);
  ASSERT_TRUE(model.ok());
  // A learnable task improves through the first rounds.
  EXPECT_GE(model->num_trees(), 10u);
  EXPECT_LE(trainer.report().best_iteration, model->num_trees() - 1);
}

// ---- Feature importance -----------------------------------------------------

TEST(FeatureImportanceTest, InformativeFeaturesScoreHigher) {
  // Only the first 3 features carry signal.
  SyntheticConfig config;
  config.num_instances = 5000;
  config.num_features = 30;
  config.informative_ratio = 0.1;  // 3 informative features.
  config.density = 1.0;
  config.label_noise = 0.1;
  config.seed = 41;
  const Dataset train = GenerateSynthetic(config);
  GbdtParams params = BaseParams();
  auto model = Trainer(params).Train(train);
  ASSERT_TRUE(model.ok());
  const auto gain = model->FeatureImportance(
      train.num_features(), GbdtModel::ImportanceType::kGain);
  // Informative features must claim the bulk of the gain mass.
  std::vector<double> sorted = gain;
  std::sort(sorted.rbegin(), sorted.rend());
  double top3 = sorted[0] + sorted[1] + sorted[2];
  double total = 0.0;
  for (double g : gain) total += g;
  EXPECT_GT(top3, 0.5 * total);
}

TEST(FeatureImportanceTest, SplitCountMatchesInternalNodes) {
  const Dataset train = MakeData(1000, 10, 43);
  GbdtParams params = BaseParams();
  params.num_trees = 3;
  auto model = Trainer(params).Train(train);
  ASSERT_TRUE(model.ok());
  const auto counts = model->FeatureImportance(
      train.num_features(), GbdtModel::ImportanceType::kSplitCount);
  double total_splits = 0.0;
  for (double c : counts) total_splits += c;
  uint32_t internal = 0;
  for (size_t t = 0; t < model->num_trees(); ++t) {
    internal += model->tree(t).NumNodes() - model->tree(t).NumLeaves();
  }
  EXPECT_DOUBLE_EQ(total_splits, internal);
}

TEST(FeatureImportanceTest, UnusedFeaturesScoreZero) {
  const Dataset train = MakeData(500, 5, 47);
  GbdtParams params = BaseParams();
  params.num_trees = 1;
  auto model = Trainer(params).Train(train);
  ASSERT_TRUE(model.ok());
  // Ask for more features than the dataset has; the extras must be zero.
  const auto gain =
      model->FeatureImportance(100, GbdtModel::ImportanceType::kGain);
  for (size_t f = 5; f < 100; ++f) EXPECT_DOUBLE_EQ(gain[f], 0.0);
}

// ---- Combined sweep -----------------------------------------------------------

struct ExtensionParam {
  GrowthPolicy growth;
  double row_subsample;
  double column_subsample;
};

class ExtensionSweepTest : public ::testing::TestWithParam<ExtensionParam> {};

TEST_P(ExtensionSweepTest, TrainsCleanAndLearns) {
  const ExtensionParam p = GetParam();
  const Dataset data = MakeData(4000, 25, 53);
  const auto [train, valid] = data.SplitTail(0.25);
  GbdtParams params = BaseParams();
  params.growth = p.growth;
  params.row_subsample = p.row_subsample;
  params.column_subsample = p.column_subsample;
  params.num_trees = 15;
  auto model = Trainer(params).Train(train, &valid);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, valid).value, 0.62);
}

INSTANTIATE_TEST_SUITE_P(
    GrowthAndSampling, ExtensionSweepTest,
    ::testing::Values(
        ExtensionParam{GrowthPolicy::kLevelWise, 1.0, 1.0},
        ExtensionParam{GrowthPolicy::kLevelWise, 0.7, 1.0},
        ExtensionParam{GrowthPolicy::kLevelWise, 1.0, 0.7},
        ExtensionParam{GrowthPolicy::kLevelWise, 0.7, 0.7},
        ExtensionParam{GrowthPolicy::kLeafWise, 1.0, 1.0},
        ExtensionParam{GrowthPolicy::kLeafWise, 0.7, 1.0},
        ExtensionParam{GrowthPolicy::kLeafWise, 1.0, 0.7},
        ExtensionParam{GrowthPolicy::kLeafWise, 0.5, 0.5}));

}  // namespace
}  // namespace vero
