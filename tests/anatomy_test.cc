// Cross-worker critical-path analysis and exact cost-anatomy attribution:
// the stitched causal DAG is one weakly-connected acyclic graph, op ids
// stay in cross-rank lockstep, attributed training time sums BIT-IDENTICALLY
// to DistResult::TrainSeconds() across the quadrant x workers x mitigation
// grid, the critical path never exceeds the total (and equals it at W=1),
// and the invariants survive crash recovery and mid-run elastic resizes.

#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "cluster/fault_injector.h"
#include "data/synthetic.h"
#include "obs/anatomy.h"
#include "obs/critical_path.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

using obs::AnatomyReport;
using obs::ObsOptions;
using obs::RunObserver;
using obs::TraceEvent;

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 4, uint32_t layers = 4) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

struct AnatomyRun {
  DistResult result;
  std::vector<TraceEvent> events;
};

AnatomyRun RunWithAnatomy(const Dataset& data, Quadrant quadrant,
                          const DistTrainOptions& options, int workers,
                          const FaultPlan* plan = nullptr) {
  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster cluster(workers);
  if (plan != nullptr) cluster.InstallFaultPlan(*plan);
  cluster.AttachObserver(&observer);
  AnatomyRun run;
  run.result = TrainDistributed(cluster, data, quadrant, options);
  run.events = observer.trace().MergedEvents();
  return run;
}

// The exact-sum house invariants every traced run must satisfy.
void CheckInvariants(const DistResult& result, int workers) {
  const AnatomyReport& a = result.anatomy;
  ASSERT_TRUE(a.enabled);

  // Attribution sums bit-identically — plain ==, no epsilon.
  EXPECT_EQ(a.attributed_train_seconds, result.TrainSeconds());
  EXPECT_TRUE(a.exact);
  EXPECT_EQ(a.train_seconds, result.TrainSeconds());

  // Components re-sum to the total in the canonical association order.
  const double resummed =
      ((a.setup_seconds + a.train_seconds) + a.recovery_seconds) +
      a.reshard_seconds;
  EXPECT_EQ(resummed, a.total_seconds);

  // Per-tree rows re-sum to the attributed total in emission order.
  double rows = 0.0;
  for (const AnatomyReport::TreeRow& row : a.per_tree) {
    const double row_total =
        ((((row.gradient + row.hist) + row.find_split) + row.node_split) +
         row.other) +
        row.comm;
    EXPECT_EQ(row_total, row.total);
    rows += row.total;
  }
  EXPECT_EQ(rows, a.attributed_train_seconds);

  // Critical path: never longer than the total; the single rank at W=1 IS
  // the path, so equality is bitwise there.
  EXPECT_LE(a.critical_path.length_seconds, a.total_seconds);
  if (workers == 1) {
    EXPECT_EQ(a.critical_path.length_seconds, a.total_seconds);
  }

  // Stitching integrity: one weakly-connected acyclic DAG.
  EXPECT_EQ(a.dag.weak_components, 1u);
  EXPECT_TRUE(a.dag.acyclic);
  EXPECT_GT(a.dag.events, 0u);
}

// ---------------------------------------------------------------------------
// Quadrant x workers x mitigation grid.
// ---------------------------------------------------------------------------

class AnatomyGridTest
    : public ::testing::TestWithParam<std::tuple<Quadrant, int>> {};

TEST_P(AnatomyGridTest, AttributionExactAcrossMitigationModes) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const auto [quadrant, workers] = GetParam();
  const Dataset data = MakeData(600, 16, 414);
  const StragglerMitigation modes[] = {StragglerMitigation::kStrict,
                                       StragglerMitigation::kBoundedStaleness,
                                       StragglerMitigation::kSpeculative};
  for (StragglerMitigation mode : modes) {
    DistTrainOptions options = SmallOptions();
    options.params.straggler_mitigation = mode;
    // A mid-run straggler makes the bounded / speculative paths take their
    // mitigation branches instead of degenerating to strict.
    FaultPlan plan;
    plan.Delay(/*rank=*/workers > 1 ? 1 : 0, CollectiveOp::kAllReduceSum,
               /*occurrence=*/2, /*seconds=*/0.2);
    const AnatomyRun run =
        RunWithAnatomy(data, quadrant, options, workers, &plan);
    ASSERT_TRUE(run.result.status.ok()) << run.result.status.ToString();
    SCOPED_TRACE(::testing::Message()
                 << "workers=" << workers
                 << " mode=" << static_cast<int>(mode));
    CheckInvariants(run.result, workers);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnatomyGridTest,
    ::testing::Combine(::testing::Values(Quadrant::kQD1, Quadrant::kQD2,
                                         Quadrant::kQD3, Quadrant::kQD4),
                       ::testing::Values(1, 2, 4)));

// ---------------------------------------------------------------------------
// Op-id lockstep: the SPMD contract makes (incarnation, op_id) a cross-rank
// join key — every collective group has exactly one member per live rank,
// and each rank's op ids are dense from 0.
// ---------------------------------------------------------------------------

TEST(AnatomyOpIdTest, CollectiveOpIdsAreInLockstepAcrossRanks) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(500, 12, 515);
  const AnatomyRun run =
      RunWithAnatomy(data, Quadrant::kQD1, SmallOptions(3, 3), 4);
  ASSERT_TRUE(run.result.status.ok());

  std::map<int64_t, std::set<int>> groups;  // op_id -> participating ranks
  std::map<int, int64_t> next_op;           // rank -> expected next op_id
  for (const TraceEvent& ev : run.events) {
    if (std::string(ev.category) != "collective") {
      EXPECT_EQ(ev.op_id, -1) << ev.name;
      continue;
    }
    ASSERT_GE(ev.op_id, 0);
    EXPECT_EQ(ev.incarnation, 0);
    // Dense per-rank sequence in buffer order.
    EXPECT_EQ(ev.op_id, next_op[ev.rank]++);
    groups[ev.op_id].insert(ev.rank);
  }
  ASSERT_FALSE(groups.empty());
  for (const auto& [op_id, ranks] : groups) {
    EXPECT_EQ(ranks.size(), 4u) << "op " << op_id;
  }
}

// ---------------------------------------------------------------------------
// Causal DAG unit behavior on hand-built event streams.
// ---------------------------------------------------------------------------

TraceEvent MakeEvent(const char* name, const char* category, int rank,
                     int32_t tree, int64_t op_id, int32_t incarnation,
                     double sim_begin, double sim_end) {
  TraceEvent ev;
  ev.name = name;
  ev.category = category;
  ev.rank = rank;
  ev.tree = tree;
  ev.op_id = op_id;
  ev.incarnation = incarnation;
  ev.sim_begin_s = sim_begin;
  ev.sim_end_s = sim_end;
  return ev;
}

TEST(CausalDagTest, CollectiveJoinsStitchRanksIntoOneComponent) {
  std::vector<TraceEvent> events;
  // Two ranks, one collective each sharing op_id 0.
  events.push_back(MakeEvent("gradient", "phase", 0, 0, -1, 0, -1, -1));
  events.push_back(
      MakeEvent("allreduce-sum", "collective", 0, 0, 0, 0, 0.0, 1.0));
  events.push_back(MakeEvent("gradient", "phase", 1, 0, -1, 0, -1, -1));
  events.push_back(
      MakeEvent("allreduce-sum", "collective", 1, 0, 0, 0, 0.0, 1.0));
  const obs::CausalDag dag = obs::BuildCausalDag(std::move(events));
  EXPECT_EQ(dag.num_vertices, 2 * 4 + 1u);  // one join vertex
  EXPECT_EQ(dag.num_collective_groups, 1u);
  EXPECT_EQ(dag.weak_components, 1u);
  EXPECT_TRUE(dag.acyclic);
}

TEST(CausalDagTest, DisconnectedRanksShowAsMultipleComponents) {
  std::vector<TraceEvent> events;
  events.push_back(MakeEvent("gradient", "phase", 0, 0, -1, 0, -1, -1));
  events.push_back(MakeEvent("gradient", "phase", 1, 0, -1, 0, -1, -1));
  const obs::CausalDag dag = obs::BuildCausalDag(std::move(events));
  EXPECT_EQ(dag.weak_components, 2u);
  EXPECT_TRUE(dag.acyclic);
}

TEST(CausalDagTest, TransitionSpanJoinsIncarnations) {
  std::vector<TraceEvent> events;
  // Incarnation 0: rank 0 works, then the driver records a recovery span,
  // then incarnation 1: rank 0's new buffer works again.
  events.push_back(MakeEvent("gradient", "phase", 0, 0, -1, 0, -1, -1));
  events.push_back(MakeEvent("recovery", "driver", -1, -1, -1, 0, -1, -1));
  events.push_back(MakeEvent("gradient", "phase", 0, 0, -1, 1, -1, -1));
  const obs::CausalDag dag = obs::BuildCausalDag(std::move(events));
  EXPECT_EQ(dag.num_incarnations, 2);
  EXPECT_EQ(dag.num_incarnation_edges, 2u);
  EXPECT_EQ(dag.weak_components, 1u);
  EXPECT_TRUE(dag.acyclic);
}

// ---------------------------------------------------------------------------
// Crash recovery: spans from both incarnations stitch into one DAG and the
// attribution stays exact (the committing incarnation is chosen per tree).
// ---------------------------------------------------------------------------

uint64_t ProbeOps(const Dataset& data, const DistTrainOptions& options,
                  int workers, int rank) {
  Cluster cluster(workers);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);
  EXPECT_TRUE(result.status.ok());
  return cluster.worker_stats(rank).num_ops;
}

TEST(AnatomyRecoveryTest, CrashRecoveryKeepsAttributionExact) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(700, 14, 616);
  DistTrainOptions options = SmallOptions(6, 4);
  options.checkpoint.interval = 1;
  options.max_recovery_attempts = 3;
  options.elastic_rejoin = true;
  const uint64_t probe = ProbeOps(data, options, 4, 2);
  ASSERT_GT(probe, 0u);

  FaultPlan plan;
  plan.Crash(/*rank=*/2, CollectiveOp::kAny, /*occurrence=*/probe / 2);
  const AnatomyRun run =
      RunWithAnatomy(data, Quadrant::kQD1, options, 4, &plan);
  ASSERT_TRUE(run.result.status.ok()) << run.result.status.ToString();
  const AnatomyReport& a = run.result.anatomy;
  EXPECT_GE(a.incarnations, 2);
  EXPECT_GT(a.recovery_seconds, 0.0);
  CheckInvariants(run.result, 4);
  // The retrained trees are attributed to the post-recovery incarnation.
  bool any_late_tree = false;
  for (const AnatomyReport::TreeRow& row : a.per_tree) {
    if (row.incarnation > 0) any_late_tree = true;
  }
  EXPECT_TRUE(any_late_tree);
}

// ---------------------------------------------------------------------------
// Elastic resize: the admitted rank's spans appear in the stitched DAG and
// attribution still sums exactly across the incarnation change.
// ---------------------------------------------------------------------------

TEST(AnatomyElasticityTest, ResizeAdmittedRankJoinsTheDag) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(700, 14, 717);
  DistTrainOptions options = SmallOptions(6, 4);
  options.checkpoint.interval = 1;
  options.max_recovery_attempts = 3;
  options.elastic_rejoin = true;
  options.params.elastic_resize_after_trees = 3;
  options.params.elastic_resize_delta = +1;

  const AnatomyRun run = RunWithAnatomy(data, Quadrant::kQD1, options, 4);
  ASSERT_TRUE(run.result.status.ok()) << run.result.status.ToString();
  const AnatomyReport& a = run.result.anatomy;
  EXPECT_EQ(a.incarnations, 2);
  EXPECT_GT(a.reshard_seconds, 0.0);
  CheckInvariants(run.result, 4);

  // The admitted rank (4, the new top rank of W=5) trained post-resize
  // trees: it must have a per-rank row under incarnation 1, and those trees
  // must be attributed to incarnation 1.
  bool admitted_row = false;
  for (const AnatomyReport::RankRow& row : a.per_rank) {
    if (row.incarnation == 1 && row.rank == 4 && row.events > 0) {
      admitted_row = true;
    }
  }
  EXPECT_TRUE(admitted_row);
  bool post_resize_tree = false;
  for (const AnatomyReport::TreeRow& row : a.per_tree) {
    if (row.incarnation == 1) post_resize_tree = true;
  }
  EXPECT_TRUE(post_resize_tree);
}

// ---------------------------------------------------------------------------
// Report serialization sanity (full schema validation lives in
// scripts/check_anatomy.py).
// ---------------------------------------------------------------------------

TEST(AnatomyJsonTest, SerializesSchemaAndSortedCategories) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(500, 12, 818);
  const AnatomyRun run =
      RunWithAnatomy(data, Quadrant::kQD2, SmallOptions(3, 3), 2);
  ASSERT_TRUE(run.result.status.ok());
  const std::string json = run.result.anatomy.ToJson();
  EXPECT_NE(json.find("\"vero.anatomy.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"critical_path\""), std::string::npos);
  const auto& categories = run.result.anatomy.categories;
  ASSERT_FALSE(categories.empty());
  for (size_t i = 1; i < categories.size(); ++i) {
    EXPECT_LT(categories[i - 1].first, categories[i].first);
  }
}

// ---------------------------------------------------------------------------
// Emitter fixture for scripts/check_anatomy.py (--emitter mode runs this
// binary with --gtest_filter=AnatomyEmit* and VERO_OBS_EMIT_DIR set, then
// validates the emitted file against the documented schema).
// ---------------------------------------------------------------------------

std::string EmitDir() {
  const char* dir = std::getenv("VERO_OBS_EMIT_DIR");
  return dir != nullptr ? std::string(dir) : ::testing::TempDir();
}

TEST(AnatomyEmitTest, WritesAnatomyJson) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(700, 18, 801);
  // One clean run and one recovery+resize run, so the checker sees both a
  // single-incarnation and a multi-incarnation report.
  DistTrainOptions clean = SmallOptions(4, 4);
  AnatomyRun clean_run = RunWithAnatomy(data, Quadrant::kQD4, clean, 4);
  ASSERT_TRUE(clean_run.result.status.ok());
  clean_run.result.anatomy.label = "anatomy_emit_clean";

  DistTrainOptions elastic = SmallOptions(6, 4);
  elastic.checkpoint.interval = 1;
  elastic.max_recovery_attempts = 3;
  elastic.elastic_rejoin = true;
  elastic.params.elastic_resize_after_trees = 3;
  elastic.params.elastic_resize_delta = +1;
  AnatomyRun elastic_run = RunWithAnatomy(data, Quadrant::kQD1, elastic, 4);
  ASSERT_TRUE(elastic_run.result.status.ok());
  elastic_run.result.anatomy.label = "anatomy_emit_elastic";

  const std::string path = EmitDir() + "/anatomy.json";
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(out));
  out << "{\"schema\":\"vero.anatomy_bench.v1\",\"runs\":["
      << clean_run.result.anatomy.ToJson() << ","
      << elastic_run.result.anatomy.ToJson() << "]}\n";
}

}  // namespace
}  // namespace vero
