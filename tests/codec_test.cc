// CollectiveCompression codec layer: frame round-trips (lossless modes are
// bit-exact across the full density range, quantized stays within its
// documented per-block bound), corrupt/truncated-frame rejection, the
// dense/sparse density switch, wire-byte accounting under the codec
// collectives, FaultPlan replay identity across modes (op-id lockstep), and
// end-to-end model identity: compression=off is bit-identical to seed and
// the lossless modes train bit-identical models with fewer bytes on the
// wire. See docs/wire_formats.md for the frame layout.

#include "cluster/codec.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>
#include <string>
#include <vector>

#include "cluster/communicator.h"
#include "common/random.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

// Seeded histogram-like payload: `density` fraction of nonzeros, clustered
// in runs (like real per-feature histograms, where populated bins neighbor
// each other).
std::vector<double> MakeHistogram(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> values(n, 0.0);
  size_t i = 0;
  while (i < n) {
    if (rng.NextDouble() < density) {
      const size_t run = 1 + static_cast<size_t>(rng.Uniform(4));
      for (size_t k = 0; k < run && i < n; ++k, ++i) {
        values[i] = rng.UniformDouble(-100.0, 100.0);
      }
    } else {
      ++i;
    }
  }
  return values;
}

CodecSpec Spec(CollectiveCompression mode, uint64_t block = 0,
               double threshold = 0.5) {
  CodecSpec spec;
  spec.mode = mode;
  spec.block_values = block;
  spec.density_threshold = threshold;
  return spec;
}

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

// ---------------------------------------------------------------------------
// Frame round-trips.
// ---------------------------------------------------------------------------

TEST(CodecFrameTest, LosslessModesAreBitExactAcrossDensities) {
  const double densities[] = {0.0, 0.01, 0.05, 0.1, 0.3, 0.5, 0.9, 1.0};
  const size_t sizes[] = {1, 7, 64, 640, 1000};  // incl. non-multiples of block
  for (const CollectiveCompression mode :
       {CollectiveCompression::kSparse, CollectiveCompression::kSparseDelta}) {
    for (double density : densities) {
      for (size_t n : sizes) {
        const std::vector<double> values =
            MakeHistogram(n, density, 1000 + n + static_cast<uint64_t>(density * 100));
        std::vector<uint8_t> frame;
        CodecStats stats;
        CodecEncode(values, Spec(mode, 64), &frame, &stats);
        std::vector<double> decoded;
        ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
        EXPECT_TRUE(BitIdentical(values, decoded))
            << CollectiveCompressionToString(mode) << " density=" << density
            << " n=" << n;
        EXPECT_EQ(stats.raw_bytes, n * sizeof(double));
        EXPECT_EQ(stats.encoded_bytes, frame.size());
      }
    }
  }
}

TEST(CodecFrameTest, SpecialValuesSurviveLossless) {
  std::vector<double> values(64, 0.0);
  values[0] = -0.0;
  values[3] = std::numeric_limits<double>::denorm_min();
  values[7] = std::numeric_limits<double>::quiet_NaN();
  values[11] = std::numeric_limits<double>::infinity();
  values[13] = -std::numeric_limits<double>::infinity();
  values[63] = 1e-300;
  for (const CollectiveCompression mode :
       {CollectiveCompression::kSparse, CollectiveCompression::kSparseDelta}) {
    std::vector<uint8_t> frame;
    CodecEncode(values, Spec(mode, 32), &frame);
    std::vector<double> decoded;
    ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
    EXPECT_TRUE(BitIdentical(values, decoded))
        << CollectiveCompressionToString(mode);
  }
}

TEST(CodecFrameTest, QuantizedStaysWithinDocumentedBound) {
  for (double density : {0.05, 0.5, 1.0}) {
    const size_t block = 80;
    const std::vector<double> values = MakeHistogram(800, density, 99);
    std::vector<uint8_t> frame;
    CodecStats stats;
    CodecEncode(values, Spec(CollectiveCompression::kQuantized, block), &frame,
                &stats);
    std::vector<double> decoded;
    ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
    ASSERT_EQ(decoded.size(), values.size());
    for (size_t start = 0; start < values.size(); start += block) {
      double lo = 0.0, hi = 0.0;
      for (size_t i = start; i < start + block; ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
      }
      // Documented bound: half a quantization step per block, with a hair of
      // slack for the scale's own rounding.
      const double bound = (hi - lo) / 65535.0 * 0.5000001 + 1e-12;
      for (size_t i = start; i < start + block; ++i) {
        EXPECT_LE(std::abs(decoded[i] - values[i]), bound)
            << "density=" << density << " i=" << i;
      }
    }
    EXPECT_GT(stats.quantized_blocks, 0u);
    // Encoding is deterministic: same input, same frame.
    std::vector<uint8_t> again;
    CodecEncode(values, Spec(CollectiveCompression::kQuantized, block), &again);
    EXPECT_EQ(frame, again);
  }
}

TEST(CodecFrameTest, QuantizedNonFiniteBlocksFallBackLossless) {
  std::vector<double> values = MakeHistogram(128, 1.0, 5);
  values[17] = std::numeric_limits<double>::quiet_NaN();
  std::vector<uint8_t> frame;
  CodecStats stats;
  CodecEncode(values, Spec(CollectiveCompression::kQuantized, 64), &frame,
              &stats);
  std::vector<double> decoded;
  ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
  ASSERT_EQ(decoded.size(), values.size());
  // Block 0 (holding the NaN) is bit-exact; block 1 is quantized.
  EXPECT_EQ(std::memcmp(values.data(), decoded.data(), 64 * sizeof(double)),
            0);
  EXPECT_EQ(stats.dense_blocks, 1u);
  EXPECT_EQ(stats.quantized_blocks, 1u);
}

TEST(CodecFrameTest, DensitySwitchPicksSparseAndDensePerBlock) {
  // Block 0: 2/64 nonzero (sparse). Block 1: all nonzero (dense).
  std::vector<double> values(128, 0.0);
  values[3] = 1.5;
  values[40] = -2.5;
  for (size_t i = 64; i < 128; ++i) values[i] = 1.0 + i;
  std::vector<uint8_t> frame;
  CodecStats stats;
  CodecEncode(values, Spec(CollectiveCompression::kSparse, 64), &frame,
              &stats);
  EXPECT_EQ(stats.sparse_blocks, 1u);
  EXPECT_EQ(stats.dense_blocks, 1u);
  std::vector<double> decoded;
  ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
  EXPECT_TRUE(BitIdentical(values, decoded));

  // threshold=1.0 forces everything sparse; threshold tiny forces dense.
  CodecStats all_sparse, all_dense;
  std::vector<uint8_t> f2;
  CodecEncode(values, Spec(CollectiveCompression::kSparse, 64, 1.0), &f2,
              &all_sparse);
  EXPECT_EQ(all_sparse.sparse_blocks, 2u);
  CodecEncode(values, Spec(CollectiveCompression::kSparse, 64, 1e-9), &f2,
              &all_dense);
  EXPECT_EQ(all_dense.dense_blocks, 2u);
}

TEST(CodecFrameTest, SparseBeatsRawAndDeltaBeatsSparseAtLowDensity) {
  const std::vector<double> values = MakeHistogram(4096, 0.05, 7);
  std::vector<uint8_t> sparse, delta;
  CodecEncode(values, Spec(CollectiveCompression::kSparse, 128), &sparse);
  CodecEncode(values, Spec(CollectiveCompression::kSparseDelta, 128), &delta);
  const size_t raw = values.size() * sizeof(double);
  EXPECT_LE(sparse.size() * 2, raw) << "expected >=2x reduction at 5% density";
  EXPECT_LE(delta.size(), sparse.size());
}

TEST(CodecFrameTest, EmptyAndWholePayloadBlocks) {
  const std::vector<double> empty;
  std::vector<uint8_t> frame;
  CodecEncode(empty, Spec(CollectiveCompression::kSparse), &frame);
  std::vector<double> decoded{1.0};
  ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
  EXPECT_TRUE(decoded.empty());

  // block_values=0 = one block over the whole payload.
  const std::vector<double> values = MakeHistogram(100, 0.2, 3);
  CodecStats stats;
  CodecEncode(values, Spec(CollectiveCompression::kSparseDelta, 0), &frame,
              &stats);
  EXPECT_EQ(stats.sparse_blocks + stats.dense_blocks, 1u);
  ASSERT_TRUE(CodecDecode(frame, &decoded).ok());
  EXPECT_TRUE(BitIdentical(values, decoded));
}

TEST(CodecFrameTest, FrameRawSizeHeaderPeek) {
  const std::vector<double> values = MakeHistogram(640, 0.1, 11);
  std::vector<uint8_t> frame;
  CodecEncode(values, Spec(CollectiveCompression::kSparseDelta, 64), &frame);
  uint64_t raw = 0;
  ASSERT_TRUE(CodecFrameRawSize(frame, &raw).ok());
  EXPECT_EQ(raw, values.size() * sizeof(double));
}

// ---------------------------------------------------------------------------
// Corrupt / truncated frame rejection.
// ---------------------------------------------------------------------------

TEST(CodecFrameTest, EveryTruncationIsRejected) {
  const std::vector<double> values = MakeHistogram(96, 0.3, 21);
  std::vector<uint8_t> frame;
  CodecEncode(values, Spec(CollectiveCompression::kSparseDelta, 32), &frame);
  std::vector<double> decoded;
  for (size_t len = 0; len < frame.size(); ++len) {
    EXPECT_FALSE(
        CodecDecode(std::span<const uint8_t>(frame.data(), len), &decoded)
            .ok())
        << "prefix of length " << len << " decoded";
  }
  // Trailing garbage is rejected too (the CRC no longer trails the body).
  std::vector<uint8_t> longer = frame;
  longer.push_back(0);
  EXPECT_FALSE(CodecDecode(longer, &decoded).ok());
}

TEST(CodecFrameTest, EveryByteFlipIsRejected) {
  const std::vector<double> values = MakeHistogram(64, 0.2, 22);
  std::vector<uint8_t> frame;
  CodecEncode(values, Spec(CollectiveCompression::kQuantized, 32), &frame);
  std::vector<double> decoded;
  for (size_t i = 0; i < frame.size(); ++i) {
    std::vector<uint8_t> corrupt = frame;
    corrupt[i] ^= 0x80;  // the kCorrupt injector's high-bit flip
    EXPECT_FALSE(CodecDecode(corrupt, &decoded).ok()) << "byte " << i;
  }
}

// ---------------------------------------------------------------------------
// Codec collectives: results, accounting, and replay identity.
// ---------------------------------------------------------------------------

TEST(CodecCollectiveTest, LosslessAllReduceMatchesStrictBitwise) {
  const int w = 4;
  const std::vector<double> base = MakeHistogram(1280, 0.08, 31);
  std::vector<std::vector<double>> strict(w), coded(w);
  for (int r = 0; r < w; ++r) {
    strict[r] = MakeHistogram(1280, 0.08, 31 + r);
    coded[r] = strict[r];
  }

  Cluster strict_cluster(w);
  strict_cluster.Run(
      [&](WorkerContext& ctx) { VERO_COMM_OK(ctx.AllReduceSum(strict[ctx.rank()])); });
  const uint64_t strict_bytes = strict_cluster.TotalStats().bytes_sent;

  for (const CollectiveCompression mode :
       {CollectiveCompression::kSparse, CollectiveCompression::kSparseDelta}) {
    std::vector<std::vector<double>> data = coded;
    Cluster cluster(w);
    cluster.Run([&](WorkerContext& ctx) {
      VERO_COMM_OK(ctx.AllReduceSumCodec(data[ctx.rank()], Spec(mode, 64)));
    });
    for (int r = 0; r < w; ++r) {
      EXPECT_TRUE(BitIdentical(strict[r], data[r]))
          << CollectiveCompressionToString(mode) << " rank " << r;
    }
    const CommStats total = cluster.TotalStats();
    EXPECT_LE(total.bytes_sent * 2, strict_bytes)
        << CollectiveCompressionToString(mode)
        << ": expected >=2x fewer bytes at 8% density";
    EXPECT_GT(total.codec_raw_bytes, total.codec_wire_bytes);
  }
}

TEST(CodecCollectiveTest, OffModeDelegatesBitIdentically) {
  const int w = 3;
  std::vector<std::vector<double>> a(w), b(w);
  for (int r = 0; r < w; ++r) {
    a[r] = MakeHistogram(600, 0.5, 41 + r);
    b[r] = a[r];
  }
  Cluster ca(w), cb(w);
  ca.Run([&](WorkerContext& ctx) { VERO_COMM_OK(ctx.AllReduceSum(a[ctx.rank()])); });
  cb.Run([&](WorkerContext& ctx) {
    VERO_COMM_OK(
        ctx.AllReduceSumCodec(b[ctx.rank()], Spec(CollectiveCompression::kOff)));
  });
  for (int r = 0; r < w; ++r) EXPECT_TRUE(BitIdentical(a[r], b[r]));
  EXPECT_EQ(ca.TotalStats().bytes_sent, cb.TotalStats().bytes_sent);
  EXPECT_EQ(cb.TotalStats().codec_raw_bytes, 0u);
  EXPECT_EQ(cb.TotalStats().codec_wire_bytes, 0u);
}

TEST(CodecCollectiveTest, QuantizedAllReduceIsReplicatedDeterministic) {
  const int w = 4;
  std::vector<std::vector<double>> data(w);
  for (int r = 0; r < w; ++r) data[r] = MakeHistogram(512, 0.6, 51 + r);
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    VERO_COMM_OK(ctx.AllReduceSumCodec(data[ctx.rank()],
                                       Spec(CollectiveCompression::kQuantized, 64)));
  });
  for (int r = 1; r < w; ++r) {
    EXPECT_TRUE(BitIdentical(data[0], data[r])) << "rank " << r;
  }
}

TEST(CodecCollectiveTest, AllGatherAndAllToAllLosslessMatchStrict) {
  const int w = 3;
  // Packed-double byte payloads, one per (sender, dest) pair.
  auto payload = [](int s, int d) {
    const std::vector<double> values = MakeHistogram(320, 0.1, 61 + 7 * s + d);
    std::vector<uint8_t> bytes(values.size() * sizeof(double));
    std::memcpy(bytes.data(), values.data(), bytes.size());
    return bytes;
  };

  std::vector<std::vector<std::vector<uint8_t>>> strict_gather(w),
      coded_gather(w), strict_a2a(w), coded_a2a(w);
  Cluster sc(w);
  sc.Run([&](WorkerContext& ctx) {
    const int r = ctx.rank();
    VERO_COMM_OK(ctx.AllGather(payload(r, r), &strict_gather[r]));
    std::vector<std::vector<uint8_t>> to_each(w);
    for (int d = 0; d < w; ++d) to_each[d] = payload(r, d);
    VERO_COMM_OK(ctx.AllToAll(std::move(to_each), &strict_a2a[r]));
  });
  Cluster cc(w);
  const CodecSpec spec = Spec(CollectiveCompression::kSparseDelta, 64);
  cc.Run([&](WorkerContext& ctx) {
    const int r = ctx.rank();
    VERO_COMM_OK(ctx.AllGatherCodec(payload(r, r), &coded_gather[r], spec));
    std::vector<std::vector<uint8_t>> to_each(w);
    for (int d = 0; d < w; ++d) to_each[d] = payload(r, d);
    VERO_COMM_OK(ctx.AllToAllCodec(std::move(to_each), &coded_a2a[r], spec));
  });
  for (int r = 0; r < w; ++r) {
    EXPECT_EQ(strict_gather[r], coded_gather[r]) << "gather rank " << r;
    EXPECT_EQ(strict_a2a[r], coded_a2a[r]) << "a2a rank " << r;
  }
  EXPECT_LT(cc.TotalStats().bytes_sent, sc.TotalStats().bytes_sent);
}

// One FaultPlan must replay identically across modes: the codec collectives
// report the same CollectiveOp stream, so occurrence matching is unchanged —
// a kCorrupt retry recharges the (smaller) encoded volume, a kDelay lands on
// the same op, and a kSilentCorrupt lands in the decoded payload.
TEST(CodecCollectiveTest, FaultPlanReplaysIdenticallyAcrossModes) {
  const int w = 3;
  const auto plan = [] {
    return FaultPlan()
        .Delay(1, CollectiveOp::kAllReduceSum, /*occurrence=*/1, 0.25)
        .Corrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/2,
                 /*attempts=*/1);
  };

  struct Outcome {
    double delay = 0.0;
    uint64_t retransmitted = 0;
    uint64_t retries = 0;
  };
  auto run = [&](CollectiveCompression mode) {
    Cluster cluster(w);
    cluster.InstallFaultPlan(plan());
    std::vector<std::vector<double>> data(w);
    for (int r = 0; r < w; ++r) data[r] = MakeHistogram(640, 0.05, 71 + r);
    cluster.Run([&](WorkerContext& ctx) {
      for (int round = 0; round < 3; ++round) {
        CodecSpec spec = Spec(mode, 64);
        VERO_COMM_OK(ctx.AllReduceSumCodec(data[ctx.rank()], spec));
      }
    });
    Outcome out;
    const CommStats total = cluster.TotalStats();
    out.delay = total.fault_delay_seconds;
    out.retransmitted = total.retransmitted_bytes;
    out.retries = total.num_retries;
    return out;
  };

  const Outcome off = run(CollectiveCompression::kOff);
  const Outcome sparse = run(CollectiveCompression::kSparse);
  // Same events fire in both modes (same op stream)...
  EXPECT_EQ(off.delay, sparse.delay);
  EXPECT_EQ(off.retries, sparse.retries);
  EXPECT_GT(sparse.retries, 0u);
  // ...but the retransmission re-ships the encoded frames, which are
  // smaller at 5% density.
  EXPECT_LT(sparse.retransmitted, off.retransmitted);
  EXPECT_GT(sparse.retransmitted, 0u);
}

TEST(CodecCollectiveTest, ComposesWithBoundedStaleness) {
  const int w = 3;
  Cluster cluster(w);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(2, CollectiveOp::kAllReduceSum, 0, /*seconds=*/5.0));
  MitigationOptions opts;
  opts.mode = MitigationMode::kBoundedStaleness;
  opts.deadline_seconds = 0.01;
  std::vector<std::vector<double>> data(w);
  for (int r = 0; r < w; ++r) data[r] = MakeHistogram(640, 0.05, 81 + r);
  std::vector<MitigationOutcome> outcomes(w);
  cluster.Run([&](WorkerContext& ctx) {
    VERO_COMM_OK(ctx.AllReduceBoundedSumCodec(
        data[ctx.rank()], Spec(CollectiveCompression::kSparseDelta, 64), opts,
        &outcomes[ctx.rank()]));
  });
  // Rank 2's contribution was deferred — identically on every rank — and
  // its delay was absorbed off the critical path.
  for (int r = 0; r < w; ++r) {
    ASSERT_EQ(outcomes[r].contributed.size(), static_cast<size_t>(w));
    EXPECT_EQ(outcomes[r].contributed[2], 0) << "rank " << r;
  }
  EXPECT_TRUE(BitIdentical(data[0], data[1]));
  EXPECT_TRUE(BitIdentical(data[0], data[2]));
  EXPECT_GT(cluster.TotalStats().absorbed_delay_seconds, 4.9);
  EXPECT_GT(cluster.TotalStats().codec_wire_bytes, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end: distributed training under compression.
// ---------------------------------------------------------------------------

Dataset MakeData(uint32_t n, uint32_t d, double density, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = density;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(HistogramCompression compression,
                              uint32_t trees = 5, uint32_t layers = 4) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  options.params.compression = compression;
  return options;
}

class QuadrantCodecTest : public ::testing::TestWithParam<Quadrant> {};

// compression=off must be bit-identical to seed (same code path), and the
// lossless modes must train the exact same model while moving fewer bytes.
TEST_P(QuadrantCodecTest, LosslessModesTrainBitIdenticalModels) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(800, 24, 0.1, 411);

  Cluster off_cluster(3);
  const DistResult off = TrainDistributed(
      off_cluster, data, quadrant, SmallOptions(HistogramCompression::kOff));
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();
  const std::string off_text = ModelToText(off.model);
  EXPECT_EQ(off_cluster.TotalStats().codec_wire_bytes, 0u);

  for (const HistogramCompression mode :
       {HistogramCompression::kSparse, HistogramCompression::kSparseDelta}) {
    Cluster cluster(3);
    const DistResult result =
        TrainDistributed(cluster, data, quadrant, SmallOptions(mode));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(ModelToText(result.model), off_text);
    EXPECT_LT(result.train_bytes_sent, off.train_bytes_sent);
    const CommStats total = cluster.TotalStats();
    EXPECT_GT(total.codec_raw_bytes, total.codec_wire_bytes);
  }
}

// Quantized training must complete and produce a valid (finite-leaf) model;
// it is allowed to differ from the lossless model.
TEST_P(QuadrantCodecTest, QuantizedTrainsAValidModel) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(800, 24, 0.1, 413);
  Cluster cluster(3);
  const DistResult result = TrainDistributed(
      cluster, data, quadrant, SmallOptions(HistogramCompression::kQuantized));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 5u);
  EXPECT_GT(cluster.TotalStats().codec_wire_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(Quadrants, QuadrantCodecTest,
                         ::testing::Values(Quadrant::kQD1, Quadrant::kQD2));

// Integrity digests operate on *decoded* payloads, so compression must not
// break blame attribution: a clean quantized run reports zero violations
// (sender digests the round-tripped bytes), and an injected silent
// corruption of the decoded QD2 exchange still convicts the receiver.
TEST(CodecIntegrityTest, QuantizedCleanRunHasNoViolations) {
  const Dataset data = MakeData(800, 24, 0.1, 421);
  for (const HistogramCompression mode :
       {HistogramCompression::kSparse, HistogramCompression::kQuantized}) {
    DistTrainOptions options = SmallOptions(mode);
    options.params.integrity = IntegrityLevel::kFull;
    Cluster cluster(3);
    const DistResult result =
        TrainDistributed(cluster, data, Quadrant::kQD2, options);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_GT(result.integrity.checks, 0u);
    EXPECT_EQ(result.integrity.violations, 0u);
    EXPECT_EQ(result.integrity.last_blamed_rank, -1);
  }
}

TEST(CodecIntegrityTest, SilentCorruptionStillBlamedUnderCompression) {
  const Dataset data = MakeData(800, 24, 0.1, 423);
  DistTrainOptions options = SmallOptions(HistogramCompression::kSparseDelta);
  options.params.integrity = IntegrityLevel::kChecksum;
  Cluster cluster(3);
  cluster.InstallFaultPlan(FaultPlan().SilentCorrupt(
      2, CollectiveOp::kAllToAll, /*occurrence=*/0, /*seed=*/77,
      FaultPhase::kTrain));
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD2, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.integrity.violations, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 2);
}

}  // namespace
}  // namespace vero
