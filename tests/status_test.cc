#include "common/status.h"

#include <gtest/gtest.h>

namespace vero {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad q");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad q");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, FailureCodesAreNotOk) {
  EXPECT_FALSE(Status::DeadlineExceeded("slow peer").ok());
  EXPECT_FALSE(Status::Unavailable("dead peer").ok());
  EXPECT_EQ(Status::DeadlineExceeded("slow peer").ToString(),
            "DeadlineExceeded: slow peer");
  EXPECT_EQ(Status::Unavailable("dead peer").ToString(),
            "Unavailable: dead peer");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::NotFound("missing"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v(std::string("hello"));
  EXPECT_EQ(v->size(), 5u);
}

Status FailingFunction() { return Status::IOError("disk"); }

Status Propagates() {
  VERO_RETURN_IF_ERROR(FailingFunction());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kIOError);
}

StatusOr<int> MakeValue(bool ok) {
  if (!ok) return Status::InvalidArgument("no");
  return 7;
}

Status UseAssignOrReturn(bool ok, int* out) {
  VERO_ASSIGN_OR_RETURN(const int v, MakeValue(ok));
  *out = v + 1;
  return Status::OK();
}

TEST(StatusMacroTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(true, &out).ok());
  EXPECT_EQ(out, 8);
  out = 0;
  EXPECT_EQ(UseAssignOrReturn(false, &out).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(out, 0);
}

TEST(StatusOrDeathTest, AccessingErrorValueDies) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH((void)v.value(), "boom");
}

}  // namespace
}  // namespace vero
