#include "core/loss.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

// Numerical gradient check: g = dL/dm and h = d2L/dm2 via central
// differences on the per-instance loss.
void CheckGradientsNumerically(const Loss& loss, float label,
                               const std::vector<double>& margin) {
  const uint32_t dims = loss.num_dims();
  GradientBuffer grads(1, dims);
  loss.ComputeGradients({label}, margin, 0, 1, &grads);
  const double eps = 1e-5;
  for (uint32_t k = 0; k < dims; ++k) {
    std::vector<double> plus = margin, minus = margin;
    plus[k] += eps;
    minus[k] -= eps;
    const double l_plus = loss.ComputeLoss({label}, plus, 0, 1);
    const double l_minus = loss.ComputeLoss({label}, minus, 0, 1);
    const double l_mid = loss.ComputeLoss({label}, margin, 0, 1);
    const double g_num = (l_plus - l_minus) / (2 * eps);
    const double h_num = (l_plus - 2 * l_mid + l_minus) / (eps * eps);
    EXPECT_NEAR(grads.at(0, k).g, g_num, 1e-4) << "dim " << k;
    // The softmax surrogate uses 2p(1-p) >= true diagonal Hessian; only
    // check exactness for the losses whose h is the true second derivative.
    if (loss.name() != "softmax") {
      EXPECT_NEAR(grads.at(0, k).h, h_num, 1e-3) << "dim " << k;
    } else {
      EXPECT_GE(grads.at(0, k).h + 1e-6, h_num) << "dim " << k;
    }
  }
}

TEST(SquareLossTest, GradientsAreResiduals) {
  SquareLoss loss;
  GradientBuffer grads(2, 1);
  loss.ComputeGradients({1.0f, -2.0f}, {3.0, 0.5}, 0, 2, &grads);
  EXPECT_DOUBLE_EQ(grads.at(0, 0).g, 2.0);
  EXPECT_DOUBLE_EQ(grads.at(0, 0).h, 1.0);
  EXPECT_DOUBLE_EQ(grads.at(1, 0).g, 2.5);
}

TEST(SquareLossTest, NumericalCheck) {
  SquareLoss loss;
  CheckGradientsNumerically(loss, 1.5f, {0.3});
  CheckGradientsNumerically(loss, -0.5f, {2.0});
}

TEST(LogisticLossTest, GradientAtZeroMargin) {
  LogisticLoss loss;
  GradientBuffer grads(2, 1);
  loss.ComputeGradients({1.0f, 0.0f}, {0.0, 0.0}, 0, 2, &grads);
  EXPECT_DOUBLE_EQ(grads.at(0, 0).g, -0.5);
  EXPECT_DOUBLE_EQ(grads.at(1, 0).g, 0.5);
  EXPECT_DOUBLE_EQ(grads.at(0, 0).h, 0.25);
}

TEST(LogisticLossTest, NumericalCheck) {
  LogisticLoss loss;
  for (double m : {-3.0, -0.5, 0.0, 1.0, 4.0}) {
    CheckGradientsNumerically(loss, 1.0f, {m});
    CheckGradientsNumerically(loss, 0.0f, {m});
  }
}

TEST(LogisticLossTest, LossAtZeroIsLog2) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.ComputeLoss({1.0f}, {0.0}, 0, 1), std::log(2.0), 1e-12);
}

TEST(LogisticLossTest, ExtremeMarginsStayFinite) {
  LogisticLoss loss;
  GradientBuffer grads(1, 1);
  loss.ComputeGradients({1.0f}, {100.0}, 0, 1, &grads);
  EXPECT_TRUE(std::isfinite(grads.at(0, 0).g));
  EXPECT_GT(grads.at(0, 0).h, 0.0);
  EXPECT_TRUE(std::isfinite(loss.ComputeLoss({0.0f}, {100.0}, 0, 1)));
}

TEST(SoftmaxLossTest, GradientsSumToZeroAcrossClasses) {
  SoftmaxLoss loss(4);
  GradientBuffer grads(1, 4);
  loss.ComputeGradients({2.0f}, {0.1, -0.5, 2.0, 0.7}, 0, 1, &grads);
  double sum = 0.0;
  for (uint32_t k = 0; k < 4; ++k) sum += grads.at(0, k).g;
  EXPECT_NEAR(sum, 0.0, 1e-12);
  // The true class has a negative gradient.
  EXPECT_LT(grads.at(0, 2).g, 0.0);
}

TEST(SoftmaxLossTest, NumericalCheck) {
  SoftmaxLoss loss(3);
  CheckGradientsNumerically(loss, 0.0f, {0.2, -1.0, 0.5});
  CheckGradientsNumerically(loss, 2.0f, {1.0, 1.0, 1.0});
}

TEST(SoftmaxLossTest, UniformMarginLossIsLogC) {
  SoftmaxLoss loss(5);
  EXPECT_NEAR(loss.ComputeLoss({3.0f}, {1.0, 1.0, 1.0, 1.0, 1.0}, 0, 1),
              std::log(5.0), 1e-12);
}

TEST(SoftmaxTest, SoftmaxInPlaceNormalizes) {
  double p[3] = {1.0, 2.0, 3.0};
  SoftmaxInPlace(p, 3);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[2], p[1]);
  EXPECT_GT(p[1], p[0]);
}

TEST(SoftmaxTest, StableForLargeMargins) {
  double p[2] = {1000.0, 999.0};
  SoftmaxInPlace(p, 2);
  EXPECT_TRUE(std::isfinite(p[0]));
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-12);
}

TEST(SigmoidTest, SymmetryAndRange) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(3.0) + Sigmoid(-3.0), 1.0, 1e-12);
  EXPECT_GT(Sigmoid(-800.0), 0.0 - 1e-300);
  EXPECT_LE(Sigmoid(800.0), 1.0);
}

TEST(MakeLossTest, FactorySelectsByTask) {
  EXPECT_EQ(MakeLossForTask(Task::kRegression, 1)->name(), "square");
  EXPECT_EQ(MakeLossForTask(Task::kBinary, 2)->name(), "logistic");
  EXPECT_EQ(MakeLossForTask(Task::kMultiClass, 7)->name(), "softmax");
  EXPECT_EQ(MakeLossForTask(Task::kMultiClass, 7)->num_dims(), 7u);
}

TEST(GradientBufferTest, TotalSumsAllInstances) {
  GradientBuffer grads(3, 2);
  for (uint32_t i = 0; i < 3; ++i) {
    for (uint32_t k = 0; k < 2; ++k) {
      grads.at(i, k) = {static_cast<double>(i), static_cast<double>(k)};
    }
  }
  const GradStats total = grads.Total();
  EXPECT_DOUBLE_EQ(total[0].g, 3.0);
  EXPECT_DOUBLE_EQ(total[1].h, 3.0);
}

TEST(GainTermTest, MatchesFormula) {
  GradStats stats = {{2.0, 3.0}, {-4.0, 1.0}};
  EXPECT_DOUBLE_EQ(GainTerm(stats, 1.0), 4.0 / 4.0 + 16.0 / 2.0);
}

}  // namespace
}  // namespace vero
