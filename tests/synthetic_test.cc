#include "data/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace vero {
namespace {

TEST(SyntheticTest, ShapeMatchesConfig) {
  SyntheticConfig config;
  config.num_instances = 500;
  config.num_features = 40;
  config.num_classes = 2;
  config.density = 0.25;
  const Dataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.num_instances(), 500u);
  EXPECT_EQ(d.num_features(), 40u);
  EXPECT_EQ(d.task(), Task::kBinary);
  // Every row has round(0.25 * 40) = 10 nonzeros.
  for (InstanceId i = 0; i < d.num_instances(); ++i) {
    EXPECT_EQ(d.matrix().RowLength(i), 10u);
  }
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticConfig config;
  config.num_instances = 200;
  config.num_features = 30;
  config.seed = 99;
  const Dataset a = GenerateSynthetic(config);
  const Dataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.labels(), b.labels());
  EXPECT_EQ(a.matrix().features(), b.matrix().features());
  EXPECT_EQ(a.matrix().values(), b.matrix().values());
  config.seed = 100;
  const Dataset c = GenerateSynthetic(config);
  EXPECT_NE(a.labels(), c.labels());
}

TEST(SyntheticTest, RowsSortedByFeature) {
  SyntheticConfig config;
  config.num_instances = 100;
  config.num_features = 50;
  config.density = 0.3;
  const Dataset d = GenerateSynthetic(config);
  for (InstanceId i = 0; i < d.num_instances(); ++i) {
    auto features = d.matrix().RowFeatures(i);
    EXPECT_TRUE(std::is_sorted(features.begin(), features.end()));
  }
}

TEST(SyntheticTest, BinaryLabelsInRange) {
  SyntheticConfig config;
  config.num_instances = 300;
  config.num_classes = 2;
  const Dataset d = GenerateSynthetic(config);
  int ones = 0;
  for (float y : d.labels()) {
    ASSERT_TRUE(y == 0.0f || y == 1.0f);
    ones += (y == 1.0f);
  }
  // The argmax construction keeps classes roughly balanced.
  EXPECT_GT(ones, 30);
  EXPECT_LT(ones, 270);
}

TEST(SyntheticTest, MultiClassUsesAllClasses) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.num_features = 50;
  config.num_classes = 5;
  const Dataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.task(), Task::kMultiClass);
  std::vector<int> counts(5, 0);
  for (float y : d.labels()) ++counts[static_cast<int>(y)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(SyntheticTest, RegressionLabels) {
  SyntheticConfig config;
  config.num_instances = 100;
  config.num_classes = 1;
  const Dataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.task(), Task::kRegression);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(SyntheticTest, DenseWhenDensityIsOne) {
  SyntheticConfig config;
  config.num_instances = 50;
  config.num_features = 8;
  config.density = 1.0;
  const Dataset d = GenerateSynthetic(config);
  EXPECT_EQ(d.num_nonzeros(), 50u * 8u);
}

TEST(ProfileTest, PublicProfilesMatchTable2) {
  const auto& profiles = PublicDatasetProfiles();
  ASSERT_EQ(profiles.size(), 8u);
  EXPECT_EQ(profiles[0].name, "SUSY");
  EXPECT_EQ(profiles[0].paper_instances, 5000000u);
  EXPECT_EQ(profiles[0].num_classes, 2u);
  const DatasetProfile& rcv1_multi = FindProfile("RCV1-multi");
  EXPECT_EQ(rcv1_multi.num_classes, 53u);
  EXPECT_EQ(rcv1_multi.kind, DatasetKind::kMultiClass);
}

TEST(ProfileTest, IndustrialProfilesMatchSection6) {
  const auto& profiles = IndustrialDatasetProfiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(FindProfile("Age").num_classes, 9u);
  EXPECT_EQ(FindProfile("Gender").paper_instances, 122000000u);
  EXPECT_EQ(FindProfile("Taste").num_classes, 100u);
}

TEST(ProfileTest, GenerateFromProfileRespectsScale) {
  const DatasetProfile& profile = FindProfile("SUSY");
  const Dataset half = GenerateFromProfile(profile, 0.5);
  EXPECT_EQ(half.num_instances(), profile.scaled_instances / 2);
  EXPECT_EQ(half.num_features(), profile.scaled_features);
}

TEST(ProfileTest, GenerateFromProfileFloorsTinyScales) {
  const Dataset tiny = GenerateFromProfile(FindProfile("SUSY"), 1e-9);
  EXPECT_GE(tiny.num_instances(), 500u);
}

TEST(ProfileTest, KindNames) {
  EXPECT_STREQ(DatasetKindToString(DatasetKind::kLowDimDense), "LD");
  EXPECT_STREQ(DatasetKindToString(DatasetKind::kHighDimSparse), "HS");
  EXPECT_STREQ(DatasetKindToString(DatasetKind::kMultiClass), "MC");
}

}  // namespace
}  // namespace vero
