#include "core/trainer.h"

#include <cmath>
#include <gtest/gtest.h>

#include "core/loss.h"
#include "core/model_io.h"
#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeBinaryData(uint32_t n = 3000, uint32_t d = 30,
                       uint64_t seed = 5) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.5;
  config.seed = seed;
  return GenerateSynthetic(config);
}

GbdtParams SmallParams() {
  GbdtParams params;
  params.num_trees = 10;
  params.num_layers = 5;
  params.num_candidate_splits = 16;
  return params;
}

TEST(TrainerTest, RejectsBadParams) {
  GbdtParams params;
  params.num_trees = 0;
  Trainer trainer(params);
  EXPECT_FALSE(trainer.Train(MakeBinaryData(100)).ok());
}

TEST(TrainerTest, RejectsEmptyDataset) {
  CsrMatrix m;
  m.set_num_cols(1);
  Dataset empty(std::move(m), {}, Task::kBinary, 2);
  Trainer trainer(SmallParams());
  EXPECT_EQ(trainer.Train(empty).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TrainerTest, TrainLossDecreasesMonotonically) {
  const Dataset train = MakeBinaryData();
  std::vector<double> losses;
  Trainer trainer(SmallParams());
  auto model = trainer.Train(train, nullptr, [&](const IterationStats& it) {
    losses.push_back(it.train_loss);
  });
  ASSERT_TRUE(model.ok());
  ASSERT_EQ(losses.size(), 10u);
  for (size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LE(losses[i], losses[i - 1] + 1e-9) << "round " << i;
  }
  EXPECT_LT(losses.back(), std::log(2.0));  // Better than the trivial model.
}

TEST(TrainerTest, BeatsRandomAucOnLearnableData) {
  const Dataset data = MakeBinaryData(5000, 40);
  const auto [train, valid] = data.SplitTail(0.2);
  Trainer trainer(SmallParams());
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, valid).value, 0.7);
}

TEST(TrainerTest, OverfitsTinyDataset) {
  // With enough capacity the trainer should (nearly) memorize 50 points.
  const Dataset train = MakeBinaryData(50, 10, 9);
  GbdtParams params = SmallParams();
  params.num_trees = 50;
  params.num_layers = 6;
  params.learning_rate = 0.5;
  Trainer trainer(params);
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, train).value, 0.99);
}

TEST(TrainerTest, RegressionReducesRmse) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.num_features = 20;
  config.num_classes = 1;
  config.density = 0.5;
  const Dataset train = GenerateSynthetic(config);
  GbdtParams params = SmallParams();
  params.num_trees = 40;  // Enough shrinkage steps to absorb the signal.
  Trainer trainer(params);
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  // Baseline RMSE (predicting 0) vs model RMSE.
  double baseline = 0.0;
  for (float y : train.labels()) baseline += y * y;
  baseline = std::sqrt(baseline / train.num_instances());
  EXPECT_LT(EvaluateModel(*model, train).value, baseline * 0.9);
}

TEST(TrainerTest, MultiClassBeatsUniformAccuracy) {
  SyntheticConfig config;
  config.num_instances = 4000;
  config.num_features = 30;
  config.num_classes = 5;
  config.density = 0.5;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, valid] = data.SplitTail(0.25);
  GbdtParams params = SmallParams();
  params.num_trees = 15;
  Trainer trainer(params);
  auto model = trainer.Train(train, &valid);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, valid).value, 2.0 / 5);
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  const Dataset train = MakeBinaryData(1000, 20);
  Trainer a(SmallParams());
  Trainer b(SmallParams());
  auto ma = a.Train(train);
  auto mb = b.Train(train);
  ASSERT_TRUE(ma.ok() && mb.ok());
  ASSERT_EQ(ma->num_trees(), mb->num_trees());
  for (size_t t = 0; t < ma->num_trees(); ++t) {
    EXPECT_TRUE(ma->tree(t) == mb->tree(t)) << "tree " << t;
  }
}

// The histogram-subtraction ablation: identical trees with and without it.
TEST(TrainerTest, SubtractionDoesNotChangeTheModel) {
  const Dataset train = MakeBinaryData(2000, 25, 13);
  GbdtParams with = SmallParams();
  with.histogram_subtraction = true;
  GbdtParams without = SmallParams();
  without.histogram_subtraction = false;
  auto ma = Trainer(with).Train(train);
  auto mb = Trainer(without).Train(train);
  ASSERT_TRUE(ma.ok() && mb.ok());
  for (size_t t = 0; t < ma->num_trees(); ++t) {
    // Structures must match exactly; leaf values may differ only by
    // floating-point associativity.
    const Tree& ta = ma->tree(t);
    const Tree& tb = mb->tree(t);
    for (NodeId id = 0; id < static_cast<NodeId>(ta.max_nodes()); ++id) {
      ASSERT_EQ(ta.Exists(id), tb.Exists(id));
      if (!ta.Exists(id)) continue;
      ASSERT_EQ(ta.node(id).state, tb.node(id).state);
      if (ta.node(id).state == TreeNode::State::kInternal) {
        EXPECT_EQ(ta.node(id).feature, tb.node(id).feature);
        EXPECT_EQ(ta.node(id).split_bin, tb.node(id).split_bin);
      } else {
        for (size_t k = 0; k < ta.node(id).leaf_values.size(); ++k) {
          EXPECT_NEAR(ta.node(id).leaf_values[k], tb.node(id).leaf_values[k],
                      1e-5);
        }
      }
    }
  }
}

TEST(TrainerTest, DeeperTreesFitBetter) {
  const Dataset train = MakeBinaryData(3000, 30, 17);
  GbdtParams shallow = SmallParams();
  shallow.num_layers = 3;
  GbdtParams deep = SmallParams();
  deep.num_layers = 7;
  auto ms = Trainer(shallow).Train(train);
  auto md = Trainer(deep).Train(train);
  ASSERT_TRUE(ms.ok() && md.ok());
  EXPECT_GE(EvaluateModel(*md, train).value,
            EvaluateModel(*ms, train).value);
}

TEST(TrainerTest, MinChildInstancesLimitsLeafSize) {
  const Dataset train = MakeBinaryData(500, 10, 23);
  GbdtParams params = SmallParams();
  params.min_child_instances = 100;
  Trainer trainer(params);
  auto model = trainer.Train(train);
  ASSERT_TRUE(model.ok());
  // With n=500 and min_child=100 a tree can have at most 5 leaves.
  for (size_t t = 0; t < model->num_trees(); ++t) {
    EXPECT_LE(model->tree(t).NumLeaves(), 5u);
  }
}

TEST(TrainerTest, ReportPhasesSumBelowTotal) {
  const Dataset train = MakeBinaryData(1000, 20);
  Trainer trainer(SmallParams());
  ASSERT_TRUE(trainer.Train(train).ok());
  const TrainReport& r = trainer.report();
  EXPECT_GT(r.total_seconds, 0.0);
  EXPECT_GT(r.peak_histogram_bytes, 0u);
  EXPECT_GT(r.data_bytes, 0u);
  EXPECT_LE(r.histogram_seconds + r.split_find_seconds +
                r.node_split_seconds,
            r.total_seconds + 1e-6);
}

TEST(TrainerTest, ValidCallbackReportsMetric) {
  const Dataset data = MakeBinaryData(2000, 20);
  const auto [train, valid] = data.SplitTail(0.3);
  Trainer trainer(SmallParams());
  int calls = 0;
  auto model =
      trainer.Train(train, &valid, [&](const IterationStats& it) {
        ++calls;
        EXPECT_TRUE(it.has_valid_metric);
        EXPECT_GE(it.valid_metric, 0.0);
        EXPECT_LE(it.valid_metric, 1.0);
        EXPECT_GE(it.elapsed_seconds, 0.0);
      });
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(calls, 10);
}

TEST(TrainerTest, ModelSurvivesDiskRoundTripWithSamePredictions) {
  const Dataset data = MakeBinaryData(800, 15);
  Trainer trainer(SmallParams());
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  const std::string path = ::testing::TempDir() + "/trainer_model.bin";
  ASSERT_TRUE(SaveModel(*model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok());
  const auto a = model->PredictDatasetMargins(data);
  const auto b = loaded->PredictDatasetMargins(data);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
  std::remove(path.c_str());
}

// Parameterized sweep: the trainer must run clean across task types, tree
// depths, and candidate-split counts.
struct SweepParam {
  uint32_t num_classes;
  uint32_t num_layers;
  uint32_t q;
};

class TrainerSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TrainerSweepTest, TrainsAndImprovesLoss) {
  const SweepParam p = GetParam();
  SyntheticConfig config;
  config.num_instances = 1500;
  config.num_features = 25;
  config.num_classes = p.num_classes;
  config.density = 0.4;
  config.seed = 31 + p.num_classes;
  const Dataset train = GenerateSynthetic(config);

  GbdtParams params;
  params.num_trees = 5;
  params.num_layers = p.num_layers;
  params.num_candidate_splits = p.q;
  std::vector<double> losses;
  Trainer trainer(params);
  auto model = trainer.Train(train, nullptr, [&](const IterationStats& it) {
    losses.push_back(it.train_loss);
  });
  ASSERT_TRUE(model.ok());
  EXPECT_LT(losses.back(), losses.front());
  EXPECT_EQ(model->num_trees(), 5u);
}

INSTANTIATE_TEST_SUITE_P(
    TaskDepthBins, TrainerSweepTest,
    ::testing::Values(SweepParam{1, 4, 8}, SweepParam{1, 6, 32},
                      SweepParam{2, 3, 8}, SweepParam{2, 6, 20},
                      SweepParam{2, 8, 64}, SweepParam{4, 4, 16},
                      SweepParam{4, 6, 20}, SweepParam{8, 5, 12}));

}  // namespace
}  // namespace vero
