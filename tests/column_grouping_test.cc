#include "partition/column_grouping.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

TEST(ColumnGroupingTest, RoundRobinAssignsModulo) {
  const std::vector<uint64_t> costs(10, 1);
  const auto owner =
      AssignFeatureGroups(costs, 3, ColumnGroupingStrategy::kRoundRobin);
  for (size_t f = 0; f < 10; ++f) EXPECT_EQ(owner[f], static_cast<int>(f % 3));
}

TEST(ColumnGroupingTest, RangeAssignsContiguously) {
  const std::vector<uint64_t> costs(9, 1);
  const auto owner =
      AssignFeatureGroups(costs, 3, ColumnGroupingStrategy::kRange);
  EXPECT_EQ(owner[0], 0);
  EXPECT_EQ(owner[4], 1);
  EXPECT_EQ(owner[8], 2);
  // Owners are non-decreasing.
  for (size_t f = 1; f < 9; ++f) EXPECT_GE(owner[f], owner[f - 1]);
}

TEST(ColumnGroupingTest, GreedyBalancesSkewedCosts) {
  // One huge feature plus many small ones: greedy must isolate the big one.
  std::vector<uint64_t> costs = {1000, 1, 1, 1, 1, 1, 1, 1};
  const auto owner =
      AssignFeatureGroups(costs, 2, ColumnGroupingStrategy::kGreedyBalance);
  const auto loads = GroupLoads(costs, owner, 2);
  EXPECT_EQ(std::max(loads[0], loads[1]), 1000u);
  EXPECT_EQ(std::min(loads[0], loads[1]), 7u);
}

TEST(ColumnGroupingTest, GreedyBeatsRoundRobinOnSkew) {
  Rng rng(7);
  std::vector<uint64_t> costs(100);
  for (auto& c : costs) {
    // Zipf-ish skew.
    c = static_cast<uint64_t>(1000.0 / (1 + rng.Uniform(50)));
  }
  const auto greedy =
      AssignFeatureGroups(costs, 4, ColumnGroupingStrategy::kGreedyBalance);
  const auto rr =
      AssignFeatureGroups(costs, 4, ColumnGroupingStrategy::kRoundRobin);
  const double greedy_imbalance =
      LoadImbalance(GroupLoads(costs, greedy, 4));
  const double rr_imbalance = LoadImbalance(GroupLoads(costs, rr, 4));
  EXPECT_LE(greedy_imbalance, rr_imbalance + 1e-9);
  EXPECT_LT(greedy_imbalance, 1.05);
}

TEST(ColumnGroupingTest, EveryFeatureAssignedToValidGroup) {
  std::vector<uint64_t> costs(57, 3);
  for (auto strategy :
       {ColumnGroupingStrategy::kGreedyBalance,
        ColumnGroupingStrategy::kRoundRobin, ColumnGroupingStrategy::kRange}) {
    const auto owner = AssignFeatureGroups(costs, 5, strategy);
    ASSERT_EQ(owner.size(), 57u);
    for (int g : owner) {
      EXPECT_GE(g, 0);
      EXPECT_LT(g, 5);
    }
    // Loads sum to total cost.
    const auto loads = GroupLoads(costs, owner, 5);
    uint64_t total = 0;
    for (uint64_t l : loads) total += l;
    EXPECT_EQ(total, 57u * 3);
  }
}

TEST(ColumnGroupingTest, SingleGroupTrivial) {
  std::vector<uint64_t> costs = {5, 10};
  const auto owner =
      AssignFeatureGroups(costs, 1, ColumnGroupingStrategy::kGreedyBalance);
  EXPECT_EQ(owner, (std::vector<int>{0, 0}));
}

TEST(ColumnGroupingTest, GreedyIsDeterministic) {
  Rng rng(11);
  std::vector<uint64_t> costs(200);
  for (auto& c : costs) c = rng.Uniform(1000);
  const auto a =
      AssignFeatureGroups(costs, 8, ColumnGroupingStrategy::kGreedyBalance);
  const auto b =
      AssignFeatureGroups(costs, 8, ColumnGroupingStrategy::kGreedyBalance);
  EXPECT_EQ(a, b);
}

TEST(LoadImbalanceTest, PerfectBalanceIsOne) {
  EXPECT_DOUBLE_EQ(LoadImbalance({5, 5, 5}), 1.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({10, 0}), 2.0);
  EXPECT_DOUBLE_EQ(LoadImbalance({}), 1.0);
}

TEST(ColumnGroupingTest, StrategyNames) {
  EXPECT_STREQ(
      ColumnGroupingStrategyToString(ColumnGroupingStrategy::kGreedyBalance),
      "greedy");
  EXPECT_STREQ(
      ColumnGroupingStrategyToString(ColumnGroupingStrategy::kRoundRobin),
      "round-robin");
}

}  // namespace
}  // namespace vero
