// Elastic scale-up/scale-down: the resizing NextMembership overload and the
// deterministic PlanReshard row-movement plan (unit + seeded property
// sweeps), the elasticity GbdtParams knob validation, and end-to-end
// mid-training resizes on the distributed trainers — including a resize
// composed with a crash, committed-prefix equality against the
// uninterrupted run, and the no-resize bit-identity guarantee.

#include <algorithm>
#include <cstdint>
#include <gtest/gtest.h>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "cluster/membership.h"
#include "core/metrics.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "obs/report.h"
#include "partition/transform.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 8, uint32_t layers = 5) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

// ---------------------------------------------------------------------------
// Resizing membership mapping.
// ---------------------------------------------------------------------------

TEST(ResizeMembershipTest, ZeroDeltaMatchesTwoArgumentForm) {
  const Membership m0 = InitialMembership(4);
  for (bool elastic : {false, true}) {
    const Membership a = NextMembership(m0, {1}, elastic);
    const Membership b = NextMembership(m0, {1}, elastic, /*resize_delta=*/0);
    EXPECT_EQ(a.world, b.world);
    EXPECT_EQ(a.prev_rank, b.prev_rank);
    EXPECT_EQ(a.rejoined, b.rejoined);
    EXPECT_TRUE(b.admitted.empty());
    EXPECT_TRUE(b.retired.empty());
  }
}

TEST(ResizeMembershipTest, ScaleUpAdmitsNewTopRanks) {
  const Membership m =
      NextMembership(InitialMembership(3), {}, /*elastic=*/true, +2);
  EXPECT_EQ(m.world, 5);
  EXPECT_EQ(m.prev_rank,
            (std::vector<int>{0, 1, 2, Membership::kPrevNone,
                              Membership::kPrevNone}));
  EXPECT_TRUE(m.rejoined.empty());
  EXPECT_EQ(m.admitted, (std::vector<int>{3, 4}));
  EXPECT_TRUE(m.retired.empty());
}

TEST(ResizeMembershipTest, ScaleDownRetiresLiveTopRanks) {
  const Membership m =
      NextMembership(InitialMembership(4), {}, /*elastic=*/true, -2);
  EXPECT_EQ(m.world, 2);
  EXPECT_EQ(m.prev_rank, (std::vector<int>{0, 1}));
  EXPECT_TRUE(m.rejoined.empty());
  EXPECT_TRUE(m.admitted.empty());
  EXPECT_EQ(m.retired, (std::vector<int>{2, 3}));
  EXPECT_NE(m.ToString().find("retired"), std::string::npos);
}

TEST(ResizeMembershipTest, DeadCommonRankBecomesRejoinDeadTopRankNotRetired) {
  // Rank 1 (kept) is dead -> rejoined replacement; rank 3 (dropped) is dead
  // -> simply gone, never listed as retired (nothing to ship from it).
  const Membership m =
      NextMembership(InitialMembership(4), {1, 3}, /*elastic=*/true, -1);
  EXPECT_EQ(m.world, 3);
  EXPECT_EQ(m.prev_rank,
            (std::vector<int>{0, Membership::kPrevNone, 2}));
  EXPECT_EQ(m.rejoined, (std::vector<int>{1}));
  EXPECT_TRUE(m.admitted.empty());
  EXPECT_TRUE(m.retired.empty());
}

TEST(ResizeMembershipTest, ScaleUpWithDeadRanksRefillsAndAdmits) {
  const Membership m =
      NextMembership(InitialMembership(3), {0, 2}, /*elastic=*/true, +1);
  EXPECT_EQ(m.world, 4);
  EXPECT_EQ(m.prev_rank,
            (std::vector<int>{Membership::kPrevNone, 1, Membership::kPrevNone,
                              Membership::kPrevNone}));
  EXPECT_EQ(m.rejoined, (std::vector<int>{0, 2}));
  EXPECT_EQ(m.admitted, (std::vector<int>{3}));
}

// ---------------------------------------------------------------------------
// PlanReshard: the common refinement of two HorizontalRange partitions.
// ---------------------------------------------------------------------------

// Old owner of `row` under a w-way HorizontalRange partition.
int OwnerOf(uint32_t row, uint32_t n, int world) {
  for (int r = 0; r < world; ++r) {
    const auto [begin, end] = HorizontalRange(n, world, r);
    if (row >= begin && row < end) return r;
  }
  ADD_FAILURE() << "row " << row << " unowned at world " << world;
  return -1;
}

// Every row whose owner changes is covered by exactly one move with the
// right endpoints; rows that stay put are covered by none.
void CheckPlanAgainstOwners(uint32_t n, int old_world, int new_world) {
  const std::vector<ShardMove> plan = PlanReshard(n, old_world, new_world);
  uint32_t prev_end = 0;
  for (const ShardMove& move : plan) {
    ASSERT_LT(move.row_begin, move.row_end);
    ASSERT_GE(move.row_begin, prev_end) << "segments overlap or unsorted";
    prev_end = move.row_end;
    ASSERT_GE(move.from_rank, 0);
    ASSERT_LT(move.from_rank, old_world);
    ASSERT_GE(move.to_rank, 0);
    ASSERT_LT(move.to_rank, new_world);
    ASSERT_NE(move.from_rank, move.to_rank);
  }
  ASSERT_LE(prev_end, n);
  for (uint32_t row = 0; row < n; ++row) {
    const int from = OwnerOf(row, n, old_world);
    const int to = OwnerOf(row, n, new_world);
    int covering = 0;
    for (const ShardMove& move : plan) {
      if (row >= move.row_begin && row < move.row_end) {
        ++covering;
        EXPECT_EQ(move.from_rank, from) << "row " << row;
        EXPECT_EQ(move.to_rank, to) << "row " << row;
      }
    }
    EXPECT_EQ(covering, from != to ? 1 : 0)
        << "row " << row << " covered by " << covering << " moves";
  }
}

TEST(PlanReshardTest, AgreesWithHorizontalRangeOwnership) {
  CheckPlanAgainstOwners(100, 3, 4);
  CheckPlanAgainstOwners(100, 4, 3);
  CheckPlanAgainstOwners(97, 5, 2);   // Uneven boundaries both ways.
  CheckPlanAgainstOwners(97, 2, 5);
  CheckPlanAgainstOwners(7, 4, 8);    // More workers than a full block each.
  CheckPlanAgainstOwners(3, 8, 1);    // Collapse to one worker.
}

TEST(PlanReshardTest, IdentityResizeMovesNothing) {
  EXPECT_TRUE(PlanReshard(1000, 4, 4).empty());
  EXPECT_TRUE(PlanReshard(0, 3, 5).empty());
}

TEST(PlanReshardTest, DeterministicAcrossCalls) {
  const std::vector<ShardMove> a = PlanReshard(12345, 6, 9);
  const std::vector<ShardMove> b = PlanReshard(12345, 6, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].row_begin, b[i].row_begin);
    EXPECT_EQ(a[i].row_end, b[i].row_end);
    EXPECT_EQ(a[i].from_rank, b[i].from_rank);
    EXPECT_EQ(a[i].to_rank, b[i].to_rank);
  }
}

// ---------------------------------------------------------------------------
// Seeded property sweep: random fail / rejoin / scale sequences preserve
// membership and shard-coverage invariants at every step.
// ---------------------------------------------------------------------------

void CheckMembershipInvariants(const Membership& prev, const Membership& m,
                               const std::vector<int>& dead) {
  ASSERT_EQ(static_cast<int>(m.prev_rank.size()), m.world);
  ASSERT_GE(m.world, 1);

  // Non-kPrevNone sources are unique, valid previous ranks, and never dead.
  std::set<int> sources;
  for (int r = 0; r < m.world; ++r) {
    const int src = m.prev_rank[r];
    if (src == Membership::kPrevNone) continue;
    EXPECT_GE(src, 0);
    EXPECT_LT(src, prev.world);
    EXPECT_TRUE(sources.insert(src).second) << "source " << src << " reused";
    EXPECT_FALSE(std::binary_search(dead.begin(), dead.end(), src))
        << "dead rank " << src << " carried over";
  }

  // rejoined + admitted = exactly the kPrevNone slots, disjoint and sorted.
  std::set<int> fresh;
  for (int r : m.rejoined) EXPECT_TRUE(fresh.insert(r).second);
  for (int r : m.admitted) EXPECT_TRUE(fresh.insert(r).second);
  EXPECT_TRUE(std::is_sorted(m.rejoined.begin(), m.rejoined.end()));
  EXPECT_TRUE(std::is_sorted(m.admitted.begin(), m.admitted.end()));
  for (int r = 0; r < m.world; ++r) {
    EXPECT_EQ(fresh.count(r) == 1, m.prev_rank[r] == Membership::kPrevNone)
        << "rank " << r;
  }

  // Retired ranks were live previous ranks and are not carried forward.
  EXPECT_TRUE(std::is_sorted(m.retired.begin(), m.retired.end()));
  for (int r : m.retired) {
    EXPECT_GE(r, 0);
    EXPECT_LT(r, prev.world);
    EXPECT_FALSE(std::binary_search(dead.begin(), dead.end(), r))
        << "dead rank " << r << " listed as retired";
    EXPECT_EQ(sources.count(r), 0u) << "retired rank " << r << " survived";
  }

  // At least one survivor links the incarnations.
  EXPECT_FALSE(sources.empty());
}

TEST(MembershipPropertyTest, RandomFailRejoinScaleSequencesKeepInvariants) {
  const uint32_t n = 911;  // Prime: every partition boundary is uneven.
  std::mt19937_64 rng(20260808);
  for (int trial = 0; trial < 40; ++trial) {
    Membership m = InitialMembership(1 + static_cast<int>(rng() % 6));
    for (int step = 0; step < 12; ++step) {
      const Membership prev = m;

      // Random dead set that keeps at least one survivor.
      std::vector<int> dead;
      for (int r = 0; r < prev.world; ++r) {
        if (rng() % 4 == 0 && static_cast<int>(dead.size()) + 1 < prev.world) {
          dead.push_back(r);
        }
      }

      // Random transition: recovery (elastic or degraded) or a resize.
      const int kind = static_cast<int>(rng() % 3);
      int delta = 0;
      bool elastic = true;
      if (kind == 0) {
        elastic = false;
      } else if (kind == 2) {
        delta = 1 + static_cast<int>(rng() % 2);
        if (rng() % 2 == 0) delta = -delta;
        const int survivors = prev.world - static_cast<int>(dead.size());
        if (prev.world + delta < 1 ||
            std::min(prev.world + delta, prev.world) <=
                static_cast<int>(dead.size()) ||
            survivors < 1) {
          delta = 0;  // Keep the transition legal; still exercises delta=0.
        }
      }
      m = NextMembership(prev, dead, elastic, delta);
      CheckMembershipInvariants(prev, m, dead);

      // Shard coverage across the transition: the reshard plan plus the
      // unmoved rows own every block exactly once (checked row-wise).
      if (prev.world != m.world) {
        CheckPlanAgainstOwners(n, prev.world, m.world);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Elasticity knob validation.
// ---------------------------------------------------------------------------

TEST(ElasticityKnobTest, ValidatesResizeSchedule) {
  GbdtParams params;
  params.num_trees = 10;
  ASSERT_TRUE(params.Validate().ok());

  params.elastic_resize_after_trees = 5;
  params.elastic_resize_delta = 1;
  EXPECT_TRUE(params.Validate().ok());
  params.elastic_resize_delta = -2;
  EXPECT_TRUE(params.Validate().ok());

  // A scheduled boundary with no delta is meaningless.
  params.elastic_resize_delta = 0;
  EXPECT_FALSE(params.Validate().ok());

  // A delta with no boundary is equally meaningless.
  params.elastic_resize_after_trees = 0;
  params.elastic_resize_delta = 1;
  EXPECT_FALSE(params.Validate().ok());

  // The boundary must leave post-resize rounds to train.
  params.elastic_resize_after_trees = 10;
  EXPECT_FALSE(params.Validate().ok());
  params.elastic_resize_after_trees = 11;
  EXPECT_FALSE(params.Validate().ok());
  params.elastic_resize_after_trees = 9;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(ElasticityKnobTest, ScaleDownBelowOneWorkerIsRejectedAtRuntime) {
  const Dataset data = MakeData(600, 16, 401);
  DistTrainOptions options = SmallOptions(6, 4);
  options.params.elastic_resize_after_trees = 3;
  options.params.elastic_resize_delta = -3;  // 3 - 3 = 0 workers: invalid.
  ASSERT_TRUE(options.params.Validate().ok());  // Validate can't know W.

  Cluster cluster(3);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);
  EXPECT_EQ(result.status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(result.elasticity.resizes, 0);
  EXPECT_EQ(result.recovery.final_world_size, 3);
}

// ---------------------------------------------------------------------------
// End-to-end resizes.
// ---------------------------------------------------------------------------

struct ResizeCase {
  Quadrant quadrant;
  int delta;
};

class ResizeE2ETest : public ::testing::TestWithParam<ResizeCase> {};

TEST_P(ResizeE2ETest, MidTrainingResizeCompletesWithCommittedPrefix) {
  const auto [quadrant, delta] = GetParam();
  const Dataset data = MakeData(1400, 30, 419);
  const auto [train, valid] = data.SplitTail(0.25);
  const uint32_t trees = 8;
  const uint32_t boundary = 4;
  const int w = 4;

  // Uninterrupted W-wide reference.
  const DistTrainOptions base_options = SmallOptions(trees);
  Cluster clean(w);
  const DistResult base =
      TrainDistributed(clean, train, quadrant, base_options, &valid);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();

  DistTrainOptions options = base_options;
  options.params.elastic_resize_after_trees = boundary;
  options.params.elastic_resize_delta = delta;
  Cluster cluster(w);
  const DistResult result =
      TrainDistributed(cluster, train, quadrant, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), trees);
  EXPECT_EQ(result.tree_costs.size(), trees);
  EXPECT_EQ(result.curve.size(), trees);
  EXPECT_EQ(result.elasticity.resizes, 1);
  EXPECT_EQ(result.recovery.final_world_size, w + delta);
  EXPECT_EQ(result.recovery.recovery_attempts, 0);
  if (delta > 0) {
    EXPECT_EQ(result.elasticity.admitted_workers, delta);
    EXPECT_EQ(result.elasticity.retired_workers, 0);
  } else {
    EXPECT_EQ(result.elasticity.admitted_workers, 0);
    EXPECT_EQ(result.elasticity.retired_workers, -delta);
  }
  // The transition moved real state (rows across owners, or a full copy to
  // an admitted feature-parallel worker) — except FP scale-down, where the
  // replicated store means retirement ships nothing.
  const bool fp_down = quadrant == Quadrant::kFeatureParallel && delta < 0;
  if (!fp_down) {
    EXPECT_GT(result.elasticity.reshard_bytes, 0u);
  } else {
    EXPECT_EQ(result.elasticity.reshard_bytes, 0u);
  }
  EXPECT_GT(result.elasticity.reshard_seconds, 0.0);

  // Committed-prefix semantics: the boundary forest is exactly the
  // uninterrupted run's first `boundary` trees.
  for (uint32_t t = 0; t < boundary; ++t) {
    EXPECT_TRUE(result.model.tree(t) == base.model.tree(t)) << "tree " << t;
  }
  // Post-resize rounds ran at the new width; quality stays at baseline.
  const double auc = EvaluateModel(result.model, valid).value;
  const double auc_base = EvaluateModel(base.model, valid).value;
  EXPECT_NEAR(auc, auc_base, 0.01 * auc_base);
}

INSTANTIATE_TEST_SUITE_P(
    QuadrantsAndDirections, ResizeE2ETest,
    ::testing::Values(ResizeCase{Quadrant::kQD1, +1},
                      ResizeCase{Quadrant::kQD1, -1},
                      ResizeCase{Quadrant::kQD2, +2},
                      ResizeCase{Quadrant::kQD3, +1},
                      ResizeCase{Quadrant::kQD4, -1},
                      ResizeCase{Quadrant::kFeatureParallel, +1},
                      ResizeCase{Quadrant::kFeatureParallel, -1}));

// A crash before the boundary composes with the scheduled resize: recovery
// refills the slot at the old width, the boundary still fires, and the run
// finishes at the new width.
TEST(ResizeE2ETest, CrashBeforeBoundaryThenResizeUp) {
  const Dataset data = MakeData(1200, 25, 421);
  const auto [train, valid] = data.SplitTail(0.25);
  DistTrainOptions options = SmallOptions();
  options.checkpoint.interval = 1;
  options.elastic_rejoin = true;
  options.params.elastic_resize_after_trees = 4;
  options.params.elastic_resize_delta = 1;

  Cluster clean(4);
  const DistResult probe =
      TrainDistributed(clean, train, Quadrant::kQD2, SmallOptions(), &valid);
  ASSERT_TRUE(probe.status.ok());
  const uint64_t total_ops = clean.worker_stats(2).num_ops;

  Cluster faulted(4);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 4));
  const DistResult result =
      TrainDistributed(faulted, train, Quadrant::kQD2, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  EXPECT_EQ(result.recovery.rejoined_workers, 1);
  EXPECT_EQ(result.elasticity.resizes, 1);
  EXPECT_EQ(result.elasticity.admitted_workers, 1);
  EXPECT_EQ(result.recovery.final_world_size, 5);
  EXPECT_EQ(result.tree_costs.size(), 8u);
  const double auc = EvaluateModel(result.model, valid).value;
  const double auc_probe = EvaluateModel(probe.model, valid).value;
  EXPECT_NEAR(auc, auc_probe, 0.01 * auc_probe);
}

// A crash during the reshard rendezvous itself: the resize is already
// applied, so the repair refills the dead slot at the NEW width.
TEST(ResizeE2ETest, CrashDuringReshardRendezvousRecoversAtNewWidth) {
  const Dataset data = MakeData(1000, 22, 431);
  DistTrainOptions options = SmallOptions(6, 4);
  options.checkpoint.interval = 1;
  options.elastic_rejoin = true;
  options.max_recovery_attempts = 2;
  options.params.elastic_resize_after_trees = 3;
  options.params.elastic_resize_delta = 1;

  Cluster faulted(3);
  // First recovery-phase collective is the reshard rendezvous barrier.
  faulted.InstallFaultPlan(
      FaultPlan().Crash(1, CollectiveOp::kAny, 0, FaultPhase::kRecovery));
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD1, options);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 6u);
  EXPECT_EQ(result.elasticity.resizes, 1);
  EXPECT_EQ(result.recovery.rendezvous_failures, 1);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  EXPECT_EQ(result.recovery.rejoined_workers, 1);
  EXPECT_EQ(result.recovery.final_world_size, 4);
}

// ---------------------------------------------------------------------------
// No-resize bit-identity: with elasticity disabled and full checkpoints the
// training + recovery pipeline is deterministic — two independent runs of
// every quadrant x fault-phase cell produce byte-identical forests, and
// carrying the (unscheduled) elasticity knobs changes nothing.
// ---------------------------------------------------------------------------

struct IdentityCase {
  Quadrant quadrant;
  FaultPhase phase;  // kAnyPhase = mid-training crash; kSetup = setup crash.
};

class NoResizeIdentityTest : public ::testing::TestWithParam<IdentityCase> {};

TEST_P(NoResizeIdentityTest, RecoveredForestIsBitIdenticalAcrossRuns) {
  const auto [quadrant, phase] = GetParam();
  const Dataset data = MakeData(1000, 24, 433);
  DistTrainOptions options = SmallOptions(6, 4);
  options.checkpoint.interval = 1;
  options.elastic_rejoin = true;

  auto run = [&]() {
    Cluster cluster(4);
    cluster.InstallFaultPlan(
        FaultPlan().Crash(1, CollectiveOp::kAny, phase == FaultPhase::kSetup
                                                     ? 1
                                                     : 30,
                          phase));
    const DistResult result =
        TrainDistributed(cluster, data, quadrant, options);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    return ModelToText(result.model);
  };

  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());
}

INSTANTIATE_TEST_SUITE_P(
    QuadrantByPhase, NoResizeIdentityTest,
    ::testing::Values(IdentityCase{Quadrant::kQD1, FaultPhase::kAnyPhase},
                      IdentityCase{Quadrant::kQD2, FaultPhase::kAnyPhase},
                      IdentityCase{Quadrant::kQD3, FaultPhase::kAnyPhase},
                      IdentityCase{Quadrant::kQD4, FaultPhase::kAnyPhase},
                      IdentityCase{Quadrant::kQD1, FaultPhase::kSetup},
                      IdentityCase{Quadrant::kQD3, FaultPhase::kSetup}));

// ---------------------------------------------------------------------------
// Observability: elasticity.* metric family and the report block.
// ---------------------------------------------------------------------------

TEST(ElasticityObsTest, ResizeEmitsMetricsAndReportBlock) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(900, 20, 439);
  DistTrainOptions options = SmallOptions(6, 4);
  options.params.elastic_resize_after_trees = 3;
  options.params.elastic_resize_delta = 1;

  obs::RunObserver observer;
  Cluster cluster(3);
  cluster.AttachObserver(&observer);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const obs::RunReport& report = result.report;

  const obs::MetricsSnapshot snapshot = observer.metrics().Merged();
  EXPECT_EQ(snapshot.CounterValue("elasticity.resizes"), 1u);
  EXPECT_EQ(snapshot.CounterValue("elasticity.admitted_workers"), 1u);
  EXPECT_GT(snapshot.CounterValue("elasticity.reshard_bytes"), 0u);
  const obs::MetricsSnapshot::Entry* seconds =
      snapshot.Find("elasticity.reshard_seconds");
  ASSERT_NE(seconds, nullptr);
  EXPECT_EQ(seconds->count, 1u);

  ASSERT_TRUE(report.enabled);
  EXPECT_EQ(report.elasticity.resizes, 1);
  EXPECT_EQ(report.elasticity.admitted_workers, 1);
  EXPECT_GT(report.elasticity.reshard_bytes, 0u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"elasticity\""), std::string::npos);
  EXPECT_NE(json.find("\"reshard_bytes\""), std::string::npos);
}

}  // namespace
}  // namespace vero
