// Elastic recovery: a crashed worker is replaced by a re-joining worker at
// a rendezvous barrier between rounds, so the rebuilt cluster runs at the
// original world size W instead of degrading to the survivors. Also covers
// overlapping failures (a second crash during the recovery redistribution
// itself), phase-targeted fault injection into the transform/sketch setup
// pipeline, the setup-pipeline trace spans, and async checkpointing's
// critical-path guarantee.

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <gtest/gtest.h>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/membership.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quadrants/checkpoint.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

using obs::ObsOptions;
using obs::RunObserver;
using obs::TraceEvent;

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 8, uint32_t layers = 5) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// Membership mapping.
// ---------------------------------------------------------------------------

TEST(MembershipTest, ElasticReplacesDeadSlotsInPlace) {
  const Membership m0 = InitialMembership(4);
  EXPECT_EQ(m0.world, 4);
  EXPECT_TRUE(m0.rejoined.empty());
  for (int r = 0; r < 4; ++r) EXPECT_EQ(m0.prev_rank[r], r);

  const Membership m1 = NextMembership(m0, {1, 3}, /*elastic=*/true);
  EXPECT_EQ(m1.world, 4);
  EXPECT_EQ(m1.prev_rank, (std::vector<int>{0, Membership::kPrevNone, 2,
                                            Membership::kPrevNone}));
  EXPECT_EQ(m1.rejoined, (std::vector<int>{1, 3}));
  EXPECT_FALSE(m1.IsRejoin(0));
  EXPECT_TRUE(m1.IsRejoin(1));
  EXPECT_NE(m1.ToString().find("new"), std::string::npos);
}

TEST(MembershipTest, DegradedCompactsSurvivors) {
  const Membership m1 =
      NextMembership(InitialMembership(4), {1, 3}, /*elastic=*/false);
  EXPECT_EQ(m1.world, 2);
  EXPECT_EQ(m1.prev_rank, (std::vector<int>{0, 2}));
  EXPECT_TRUE(m1.rejoined.empty());

  // A further failure chains off the compacted incarnation.
  const Membership m2 = NextMembership(m1, {0}, /*elastic=*/false);
  EXPECT_EQ(m2.world, 1);
  EXPECT_EQ(m2.prev_rank, (std::vector<int>{1}));
}

// ---------------------------------------------------------------------------
// Kill-then-rejoin on every quadrant: the job finishes at full W.
// ---------------------------------------------------------------------------

class ElasticQuadrantTest : public ::testing::TestWithParam<Quadrant> {};

TEST_P(ElasticQuadrantTest, KillThenRejoinFinishesAtFullWorldSize) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(1400, 30, 307);
  const auto [train, valid] = data.SplitTail(0.25);
  const DistTrainOptions options = SmallOptions();
  const int w = 4;

  // Failure-free baseline: quality target and the positional fault address.
  Cluster clean(w);
  const DistResult base =
      TrainDistributed(clean, train, quadrant, options, &valid);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_EQ(base.model.num_trees(), 8u);
  const double auc_clean = EvaluateModel(base.model, valid).value;
  const uint64_t total_ops = clean.worker_stats(2).num_ops;
  ASSERT_GT(total_ops, 20u);

  Cluster faulted(w);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 2));
  DistTrainOptions elastic_options = options;
  elastic_options.checkpoint.interval = 1;
  elastic_options.elastic_rejoin = true;
  const DistResult result =
      TrainDistributed(faulted, train, quadrant, elastic_options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.failures_observed, 1);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  // The headline elastic property: the replacement re-joined, so the final
  // cluster is back at the original world size.
  EXPECT_EQ(result.recovery.final_world_size, w);
  EXPECT_EQ(result.recovery.rejoined_workers, 1);
  EXPECT_EQ(result.recovery.rendezvous_failures, 0);
  EXPECT_GT(result.recovery.trees_recovered, 0u);
  EXPECT_GT(result.recovery.trees_retrained, 0u);
  EXPECT_EQ(result.recovery.trees_recovered + result.recovery.trees_retrained,
            8u);
  // Recovery moved real state: the rendezvous checkpoint broadcast plus the
  // replacement's shard re-read.
  EXPECT_GT(result.recovery.recovery_bytes, 0u);
  EXPECT_GT(result.recovery.recovery_seconds, 0.0);
  EXPECT_EQ(result.tree_costs.size(), 8u);
  EXPECT_EQ(result.curve.size(), 8u);
  EXPECT_EQ(faulted.dead_ranks(), std::vector<int>{2});

  const double auc = EvaluateModel(result.model, valid).value;
  EXPECT_NEAR(auc, auc_clean, 0.01 * auc_clean);
}

INSTANTIATE_TEST_SUITE_P(AllQuadrants, ElasticQuadrantTest,
                         ::testing::Values(Quadrant::kQD1, Quadrant::kQD2,
                                           Quadrant::kQD3, Quadrant::kQD4));

// ---------------------------------------------------------------------------
// Overlapping failures: a crash during the recovery redistribution itself.
// ---------------------------------------------------------------------------

TEST(ElasticRecoveryTest, OverlappingFailureDuringRecoveryRedistribution) {
  const Dataset data = MakeData(1200, 25, 311);
  const auto [train, valid] = data.SplitTail(0.25);
  DistTrainOptions options = SmallOptions();
  // Interval 2 leaves the odd round uncheckpointed, so the mid-training
  // crash itself strands work in the wasted counters (not only the failed
  // rendezvous later).
  options.checkpoint.interval = 2;
  options.elastic_rejoin = true;
  options.max_recovery_attempts = 3;

  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, train, Quadrant::kQD2, options, &valid);
  ASSERT_TRUE(base.status.ok());
  const uint64_t total_ops = clean.worker_stats(2).num_ops;

  // Single-failure reference: same mid-training crash, clean recovery.
  Cluster single(4);
  single.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 2));
  const DistResult ref =
      TrainDistributed(single, train, Quadrant::kQD2, options, &valid);
  ASSERT_TRUE(ref.status.ok()) << ref.status.ToString();
  ASSERT_EQ(ref.recovery.recovery_attempts, 1);

  // Overlapping: rank 1 additionally crashes at its first collective of the
  // recovery rendezvous (the rejoin barrier), killing recovery attempt 1.
  Cluster overlapped(4);
  overlapped.InstallFaultPlan(
      FaultPlan()
          .Crash(2, CollectiveOp::kAny, total_ops / 2)
          .Crash(1, CollectiveOp::kAny, 0, FaultPhase::kRecovery));
  const DistResult result =
      TrainDistributed(overlapped, train, Quadrant::kQD2, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.failures_observed, 2);
  EXPECT_EQ(result.recovery.recovery_attempts, 2);
  EXPECT_EQ(result.recovery.rendezvous_failures, 1);
  // Both dead slots were refilled (rank 2's replacement, then rank 1's).
  EXPECT_EQ(result.recovery.rejoined_workers, 2);
  EXPECT_EQ(result.recovery.final_world_size, 4);
  EXPECT_EQ(result.recovery.trees_recovered + result.recovery.trees_retrained,
            8u);
  EXPECT_EQ(result.tree_costs.size(), 8u);

  // Both failed attempts are charged. The single-failure reference already
  // wastes the uncheckpointed round of the mid-training crash; the
  // overlapping run additionally wastes attempt 1's whole redistribution
  // (replacement shard re-ship + rendezvous traffic).
  EXPECT_GT(ref.wasted_seconds, 0.0);
  EXPECT_GT(ref.wasted_bytes, 0u);
  EXPECT_GT(result.wasted_seconds, ref.wasted_seconds);
  EXPECT_GT(result.wasted_bytes, ref.wasted_bytes);
  EXPECT_GE(result.recovery.recovery_bytes, ref.recovery.recovery_bytes);

  const double auc = EvaluateModel(result.model, valid).value;
  const double auc_base = EvaluateModel(base.model, valid).value;
  EXPECT_NEAR(auc, auc_base, 0.01 * auc_base);
}

// Repeated crashes during the rendezvous exhaust the recovery budget and
// surface as a Status — never a hang or an exception.
TEST(ElasticRecoveryTest, RepeatedRendezvousFailuresExhaustBudget) {
  const Dataset data = MakeData(800, 20, 313);
  DistTrainOptions options = SmallOptions(4, 4);
  options.checkpoint.interval = 1;
  options.elastic_rejoin = true;
  options.max_recovery_attempts = 2;

  Cluster faulted(4);
  // Rank 2 dies mid-training; then every rendezvous is killed: rank 1 at
  // its first recovery-phase op (attempt 1's barrier). Attempt 1's broken
  // barrier advanced rank 3's recovery-phase counter to 1, so occurrence 2
  // hits rank 3 during attempt 2's rendezvous broadcast.
  faulted.InstallFaultPlan(
      FaultPlan()
          .Crash(2, CollectiveOp::kAny, 12)
          .Crash(1, CollectiveOp::kAny, 0, FaultPhase::kRecovery)
          .Crash(3, CollectiveOp::kAny, 2, FaultPhase::kRecovery));
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD1, options);

  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.recovery.recovery_attempts, 2);
  EXPECT_EQ(result.recovery.rendezvous_failures, 2);
  EXPECT_EQ(result.recovery.failures_observed, 3);
}

// ---------------------------------------------------------------------------
// Phase-targeted faults in the transform / sketch setup pipeline.
// ---------------------------------------------------------------------------

class TransformCrashTest : public ::testing::TestWithParam<Quadrant> {};

// A worker dies mid-AllToAll during the vertical transform (the second
// setup-phase AllToAll: sketch repartition is #0, column-group repartition
// is #1). Elastic recovery re-runs the transform on a full-size cluster.
TEST_P(TransformCrashTest, CrashMidTransformAllToAllRecovers) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(1000, 24, 317);
  const auto [train, valid] = data.SplitTail(0.25);
  DistTrainOptions options = SmallOptions();
  options.checkpoint.interval = 1;
  options.elastic_rejoin = true;

  Cluster faulted(4);
  faulted.InstallFaultPlan(FaultPlan().Crash(
      1, CollectiveOp::kAllToAll, 1, FaultPhase::kSetup));
  const DistResult result =
      TrainDistributed(faulted, train, quadrant, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.failures_observed, 1);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  EXPECT_EQ(result.recovery.final_world_size, 4);
  EXPECT_EQ(result.recovery.rejoined_workers, 1);
  // The crash predates any completed round, so nothing was checkpointed:
  // the rebuilt cluster retrains the full forest.
  EXPECT_EQ(result.recovery.trees_recovered, 0u);
  EXPECT_EQ(result.recovery.trees_retrained, 8u);
  EXPECT_GT(result.recovery.recovery_bytes, 0u);
  EXPECT_EQ(faulted.dead_ranks(), std::vector<int>{1});
  EXPECT_GT(EvaluateModel(result.model, valid).value, 0.65);
}

INSTANTIATE_TEST_SUITE_P(VerticalQuadrants, TransformCrashTest,
                         ::testing::Values(Quadrant::kQD3, Quadrant::kQD4));

// A phase-targeted event whose phase never occurs (kRecovery on a clean
// run) must leave the simulation bit-identical: the per-phase occurrence
// counters are pure bookkeeping.
TEST(TransformCrashTest, UnfiredPhaseEventKeepsRunBitIdentical) {
  const Dataset data = MakeData(1000, 24, 331);
  const DistTrainOptions options = SmallOptions(5, 5);

  Cluster plain(4);
  const DistResult a = TrainDistributed(plain, data, Quadrant::kQD3, options);
  Cluster armed(4);
  armed.InstallFaultPlan(
      FaultPlan().Crash(0, CollectiveOp::kAny, 0, FaultPhase::kRecovery));
  const DistResult b = TrainDistributed(armed, data, Quadrant::kQD3, options);

  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.train_bytes_sent, b.train_bytes_sent);
  for (int r = 0; r < 4; ++r) {
    const CommStats& sa = plain.worker_stats(r);
    const CommStats& sb = armed.worker_stats(r);
    EXPECT_EQ(sa.bytes_sent, sb.bytes_sent) << "rank " << r;
    EXPECT_EQ(sa.num_ops, sb.num_ops) << "rank " << r;
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds) << "rank " << r;  // Exact.
  }
  EXPECT_EQ(plain.MaxSimSeconds(), armed.MaxSimSeconds());
}

// ---------------------------------------------------------------------------
// Setup-pipeline trace spans.
// ---------------------------------------------------------------------------

TEST(SetupSpanTest, TransformPipelineSpansCarryRankAttribution) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(900, 20, 337);
  const DistTrainOptions options = SmallOptions(4, 4);
  const int workers = 4;

  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster cluster(workers);
  cluster.AttachObserver(&observer);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD3, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  // name -> ranks that recorded it.
  const char* kSetupSpans[] = {"sketch-build", "transform-encode",
                               "transform-decode", "label-broadcast"};
  std::map<std::string, std::set<int>> ranks_of;
  for (const TraceEvent& e : observer.trace().MergedEvents()) {
    if (std::string_view(e.category) != "phase") continue;
    for (const char* name : kSetupSpans) {
      if (std::string_view(e.name) == name) {
        // Setup spans predate any boosting round: tree stays unattributed
        // so per-tree cost aggregation never sees them.
        EXPECT_EQ(e.tree, -1) << name;
        ranks_of[name].insert(e.rank);
      }
    }
  }
  for (const char* name : kSetupSpans) {
    ASSERT_TRUE(ranks_of.count(name)) << "missing span " << name;
    EXPECT_EQ(ranks_of[name].size(), static_cast<size_t>(workers))
        << "span " << name << " not recorded on every rank";
  }
}

TEST(SetupSpanTest, HorizontalQuadrantRecordsSketchSpanOnly) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(900, 20, 347);
  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster cluster(3);
  cluster.AttachObserver(&observer);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, SmallOptions(4, 4));
  ASSERT_TRUE(result.status.ok());

  bool saw_sketch = false;
  for (const TraceEvent& e : observer.trace().MergedEvents()) {
    const std::string_view name(e.name);
    saw_sketch = saw_sketch || name == "sketch-build";
    EXPECT_NE(name, "transform-encode");
    EXPECT_NE(name, "transform-decode");
    EXPECT_NE(name, "label-broadcast");
  }
  EXPECT_TRUE(saw_sketch);
}

// ---------------------------------------------------------------------------
// Async checkpointing: identical training, file IO off the round loop.
// ---------------------------------------------------------------------------

TEST(AsyncCheckpointTest, AsyncCheckpointingKeepsCriticalPathClean) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(1000, 22, 349);
  const uint32_t trees = 6;

  struct Run {
    DistResult result;
    std::vector<TraceEvent> events;
    obs::MetricsSnapshot metrics;
  };
  auto run_with = [&](bool async, const std::string& dir) {
    DistTrainOptions options = SmallOptions(trees, 4);
    options.checkpoint.interval = 1;
    options.checkpoint.async = async;
    options.checkpoint.dir = dir;
    ObsOptions obs_options;
    obs_options.trace = true;
    RunObserver observer(obs_options);
    Cluster cluster(3);
    cluster.AttachObserver(&observer);
    Run run;
    run.result = TrainDistributed(cluster, data, Quadrant::kQD1, options);
    run.events = observer.trace().MergedEvents();
    run.metrics = observer.metrics().Merged();
    return run;
  };

  const std::string sync_dir = FreshDir("async_ckpt_sync");
  const std::string async_dir = FreshDir("async_ckpt_async");
  const Run sync_run = run_with(false, sync_dir);
  const Run async_run = run_with(true, async_dir);
  ASSERT_TRUE(sync_run.result.status.ok());
  ASSERT_TRUE(async_run.result.status.ok());

  // Training is oblivious to the writer mode: identical forests and
  // identical modeled cost (bytes and simulated comm are deterministic;
  // thread-CPU seconds are not and are deliberately not compared).
  ASSERT_EQ(sync_run.result.model.num_trees(), trees);
  ASSERT_EQ(async_run.result.model.num_trees(), trees);
  for (uint32_t t = 0; t < trees; ++t) {
    EXPECT_TRUE(sync_run.result.model.tree(t) ==
                async_run.result.model.tree(t))
        << "tree " << t;
    EXPECT_EQ(sync_run.result.tree_costs[t].bytes_sent,
              async_run.result.tree_costs[t].bytes_sent)
        << "tree " << t;
    EXPECT_DOUBLE_EQ(sync_run.result.tree_costs[t].comm_seconds,
                     async_run.result.tree_costs[t].comm_seconds)
        << "tree " << t;
  }
  EXPECT_EQ(sync_run.result.train_bytes_sent,
            async_run.result.train_bytes_sent);

  // Span names tell the critical-path story: the sync round loop carries
  // "checkpoint" (serialize + write inline); the async loop only ever
  // records the snapshot copy.
  auto count_spans = [](const Run& run, std::string_view name) {
    size_t n = 0;
    for (const TraceEvent& e : run.events) {
      if (std::string_view(e.category) != "collective" &&
          std::string_view(e.name) == name) {
        EXPECT_EQ(e.rank, 0) << name << " span off rank 0";
        ++n;
      }
    }
    return n;
  };
  EXPECT_EQ(count_spans(sync_run, "checkpoint"), trees);
  EXPECT_EQ(count_spans(sync_run, "checkpoint-snapshot"), 0u);
  EXPECT_EQ(count_spans(async_run, "checkpoint"), 0u);
  EXPECT_EQ(count_spans(async_run, "checkpoint-snapshot"), trees);

  // The sync writer commits inline: exactly one durable commit per round.
  // The async writer also commits every round when it keeps up, but its
  // newest-wins slot may legally coalesce rounds when the test box is
  // loaded — what it guarantees is at least one commit, at most one per
  // round, and (asserted below) a final durable state covering the whole
  // run. Either way the metrics land on the writer's shard.
  EXPECT_EQ(sync_run.metrics.CounterValue("checkpoint.count"), trees);
  const uint64_t async_commits =
      async_run.metrics.CounterValue("checkpoint.count");
  EXPECT_GE(async_commits, 1u);
  EXPECT_LE(async_commits, trees);
  for (const Run* run : {&sync_run, &async_run}) {
    EXPECT_GT(run->metrics.CounterValue("checkpoint.bytes"), 0u);
    const obs::MetricsSnapshot::Entry* latency =
        run->metrics.Find("checkpoint.latency_seconds");
    ASSERT_NE(latency, nullptr);
    EXPECT_EQ(latency->count,
              run->metrics.CounterValue("checkpoint.count"));
  }

  for (const std::string& dir : {sync_dir, async_dir}) {
    const auto loaded = LoadLatestCheckpoint(dir);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->trees_done, trees);
    EXPECT_EQ(loaded->model.num_trees(), trees);
  }
}

// Async checkpointing composes with elastic recovery: the driver-owned
// writer survives the cluster teardown, and recovery resumes from whatever
// the background thread had committed.
TEST(AsyncCheckpointTest, AsyncWriterFeedsElasticRecovery) {
  const Dataset data = MakeData(1200, 25, 353);
  const auto [train, valid] = data.SplitTail(0.25);
  DistTrainOptions options = SmallOptions();
  options.checkpoint.interval = 1;
  options.checkpoint.async = true;
  options.elastic_rejoin = true;

  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, train, Quadrant::kQD2, options, &valid);
  ASSERT_TRUE(base.status.ok());
  const uint64_t total_ops = clean.worker_stats(2).num_ops;

  Cluster faulted(4);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 2));
  const DistResult result =
      TrainDistributed(faulted, train, Quadrant::kQD2, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.final_world_size, 4);
  EXPECT_EQ(result.recovery.rejoined_workers, 1);
  // The async writer had at least one committed round to resume from (the
  // crash lands many rounds in, and Flush settles the pending slot).
  EXPECT_GT(result.recovery.trees_recovered, 0u);
  EXPECT_EQ(result.recovery.trees_recovered + result.recovery.trees_retrained,
            8u);
  const double auc = EvaluateModel(result.model, valid).value;
  const double auc_clean = EvaluateModel(base.model, valid).value;
  EXPECT_NEAR(auc, auc_clean, 0.01 * auc_clean);
}

}  // namespace
}  // namespace vero
