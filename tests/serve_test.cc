#include "serve/batch_predictor.h"

#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"
#include "serve/flat_forest.h"

namespace vero {
namespace {

using serve::BatchPredictor;
using serve::FlatForest;
using serve::ServeOptions;

// ---- Fixtures -------------------------------------------------------------

// Random forest with trees of random shape: nodes split with probability
// 0.7 while depth allows, so the grid covers full trees, stumps, lopsided
// trees, and (at max_layers == 1) single-leaf trees.
Tree MakeRandomTree(Rng& rng, uint32_t max_layers, uint32_t dims,
                    uint32_t num_features) {
  Tree tree(max_layers, dims);
  for (NodeId id = 0; static_cast<uint32_t>(id) < tree.max_nodes(); ++id) {
    if (!tree.Exists(id) ||
        tree.node(id).state != TreeNode::State::kLeaf) {
      continue;
    }
    if (static_cast<uint32_t>(RightChild(id)) < tree.max_nodes() &&
        rng.Bernoulli(0.7)) {
      tree.SetSplit(id, static_cast<FeatureId>(rng.Uniform(num_features)),
                    static_cast<float>(rng.UniformDouble(-1.0, 1.0)),
                    static_cast<BinId>(rng.Uniform(16)), rng.Bernoulli(0.5),
                    rng.NextDouble());
    }
  }
  for (NodeId id = 0; static_cast<uint32_t>(id) < tree.max_nodes(); ++id) {
    if (tree.Exists(id) && tree.node(id).state == TreeNode::State::kLeaf) {
      std::vector<float> weights(dims);
      for (float& w : weights) {
        w = static_cast<float>(rng.UniformDouble(-2.0, 2.0));
      }
      tree.SetLeaf(id, weights);
    }
  }
  return tree;
}

GbdtModel MakeRandomModel(Rng& rng, uint32_t trees, uint32_t max_layers,
                          uint32_t dims, uint32_t num_features) {
  GbdtModel model(dims == 1 ? Task::kBinary : Task::kMultiClass,
                  dims == 1 ? 2 : dims, 0.1);
  for (uint32_t t = 0; t < trees; ++t) {
    model.AddTree(MakeRandomTree(rng, max_layers, dims, num_features));
  }
  return model;
}

// Sorted sparse rows with random density; roughly one row in ten is empty
// (all features missing), exercising the default_left chains.
CsrMatrix MakeRandomRows(Rng& rng, uint32_t n, uint32_t num_features,
                         double density) {
  CsrMatrix m;
  m.set_num_cols(num_features);
  for (uint32_t i = 0; i < n; ++i) {
    m.StartRow();
    if (rng.Bernoulli(0.1)) continue;  // Empty row.
    const uint32_t nnz = 1 + static_cast<uint32_t>(rng.Uniform(
                                 std::max(1u, static_cast<uint32_t>(
                                                  num_features * density))));
    for (const uint32_t f : rng.SampleWithoutReplacement(
             num_features, std::min(nnz, num_features))) {
      m.PushEntry(f, static_cast<float>(rng.UniformDouble(-2.0, 2.0)));
    }
  }
  return m;
}

// The per-row reference: Tree::PredictInto tree by tree, exactly what
// GbdtModel::PredictMargins does.
std::vector<double> ReferenceMargins(const GbdtModel& model,
                                     const CsrMatrix& m) {
  const uint32_t dims = model.margin_dims();
  std::vector<double> out(static_cast<size_t>(m.num_rows()) * dims);
  for (InstanceId i = 0; i < m.num_rows(); ++i) {
    model.PredictMargins(m.RowFeatures(i), m.RowValues(i),
                         out.data() + static_cast<size_t>(i) * dims);
  }
  return out;
}

// Dense copy with NaN in every absent slot (the dense missing marker).
std::vector<float> DenseFromCsr(const CsrMatrix& m, uint32_t num_cols) {
  std::vector<float> dense(static_cast<size_t>(m.num_rows()) * num_cols,
                           NAN);
  for (InstanceId i = 0; i < m.num_rows(); ++i) {
    const auto features = m.RowFeatures(i);
    const auto values = m.RowValues(i);
    for (size_t k = 0; k < features.size(); ++k) {
      dense[static_cast<size_t>(i) * num_cols + features[k]] = values[k];
    }
  }
  return dense;
}

void ExpectBitIdentical(const std::vector<double>& want,
                        const std::vector<double>& got,
                        const std::string& label) {
  ASSERT_EQ(want.size(), got.size()) << label;
  if (want.empty()) return;  // memcmp on a null data() is UB.
  ASSERT_EQ(0, std::memcmp(want.data(), got.data(),
                           want.size() * sizeof(double)))
      << label;
}

// ---- Differential property tests -----------------------------------------

TEST(FlatForestTest, FlattenSingleHandBuiltTree) {
  GbdtModel model(Task::kBinary, 2, 0.3);
  Tree t(3, 1);
  t.SetSplit(0, 4, 1.5f, 2, false, 3.0);
  t.SetSplit(1, 2, -0.5f, 1, true, 2.0);
  t.SetLeaf(3, {-0.5f});
  t.SetLeaf(4, {0.25f});
  t.SetLeaf(2, {0.5f});
  model.AddTree(std::move(t));

  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok()) << forest_or.status().ToString();
  const FlatForest& forest = forest_or.value();
  EXPECT_EQ(forest.num_trees(), 1u);
  EXPECT_EQ(forest.num_internal_nodes(), 2u);
  EXPECT_EQ(forest.num_leaves(), 3u);
  EXPECT_EQ(forest.max_feature(), 4u);

  const std::vector<FeatureId> features = {2, 4};
  const std::vector<float> values = {-1.0f, 1.0f};
  double want = 0.0, got = 0.0;
  model.PredictMargins(features, values, &want);
  forest.PredictRowMargins(features, values, &got);
  EXPECT_EQ(std::memcmp(&want, &got, sizeof(double)), 0);
}

// The core contract: for random forests (depths 1..L, C in {1, 3}, missing
// values exercising default_left, sparse rows), BatchPredictor margins are
// bit-identical to per-row Tree::PredictInto at every thread count x batch
// size x tile shape in the grid.
TEST(BatchPredictorDifferentialTest, SparseGridBitIdentical) {
  Rng rng(1234);
  const uint32_t d = 40;
  for (const uint32_t dims : {1u, 3u}) {
    for (uint32_t max_layers = 1; max_layers <= 6; ++max_layers) {
      const GbdtModel model = MakeRandomModel(rng, 5, max_layers, dims, d);
      const CsrMatrix rows = MakeRandomRows(rng, 97, d, 0.3);
      const std::vector<double> want = ReferenceMargins(model, rows);

      auto forest_or = FlatForest::FromModel(model);
      ASSERT_TRUE(forest_or.ok()) << forest_or.status().ToString();
      const FlatForest& forest = forest_or.value();

      for (const uint32_t threads : {1u, 2u, 4u}) {
        for (const uint32_t batch : {1u, 3u, 17u, 64u}) {
          ServeOptions options;
          options.num_threads = threads;
          options.row_block = 7;
          options.tree_block = 2;
          const BatchPredictor predictor(&forest, options);
          std::vector<double> got(want.size(), -1.0);
          for (InstanceId b = 0; b < rows.num_rows(); b += batch) {
            const InstanceId e =
                std::min<InstanceId>(b + batch, rows.num_rows());
            predictor.PredictCsrMargins(
                rows, b, e, got.data() + static_cast<size_t>(b) * dims);
          }
          ExpectBitIdentical(
              want, got,
              "dims=" + std::to_string(dims) + " L=" +
                  std::to_string(max_layers) + " threads=" +
                  std::to_string(threads) + " batch=" +
                  std::to_string(batch));
        }
      }
    }
  }
}

// Dense input (NaN-marked missing) routes identically to the sparse rows it
// was densified from.
TEST(BatchPredictorDifferentialTest, DenseGridBitIdentical) {
  Rng rng(99);
  const uint32_t d = 25;
  for (const uint32_t dims : {1u, 3u}) {
    const GbdtModel model = MakeRandomModel(rng, 4, 5, dims, d);
    const CsrMatrix rows = MakeRandomRows(rng, 61, d, 0.4);
    const std::vector<double> want = ReferenceMargins(model, rows);
    const std::vector<float> dense = DenseFromCsr(rows, d);

    auto forest_or = FlatForest::FromModel(model);
    ASSERT_TRUE(forest_or.ok()) << forest_or.status().ToString();
    for (const uint32_t threads : {1u, 3u}) {
      ServeOptions options;
      options.num_threads = threads;
      options.row_block = 16;
      options.tree_block = 3;
      const BatchPredictor predictor(&forest_or.value(), options);
      std::vector<double> got(want.size(), -1.0);
      predictor.PredictDenseMargins(dense.data(), rows.num_rows(), d,
                                    got.data());
      ExpectBitIdentical(want, got,
                         "dense dims=" + std::to_string(dims) + " threads=" +
                             std::to_string(threads));
    }
  }
}

TEST(BatchPredictorTest, AllMissingRowsFollowDefaultDirections) {
  Rng rng(7);
  const GbdtModel model = MakeRandomModel(rng, 6, 5, 3, 20);
  CsrMatrix rows;
  rows.set_num_cols(20);
  for (int i = 0; i < 9; ++i) rows.StartRow();  // All rows fully missing.
  const std::vector<double> want = ReferenceMargins(model, rows);

  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());
  const BatchPredictor predictor(&forest_or.value());
  std::vector<double> got(want.size(), -1.0);
  predictor.PredictCsrMargins(rows, got.data());
  ExpectBitIdentical(want, got, "all-missing");
  // The margins are non-trivial: some default chain reaches a nonzero leaf.
  bool any_nonzero = false;
  for (const double v : got) any_nonzero |= (v != 0.0);
  EXPECT_TRUE(any_nonzero);
}

TEST(BatchPredictorTest, EmptyForestScoresZero) {
  const GbdtModel model(Task::kBinary, 2, 0.1);
  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());
  EXPECT_EQ(forest_or->num_trees(), 0u);
  Rng rng(3);
  const CsrMatrix rows = MakeRandomRows(rng, 10, 8, 0.5);
  const BatchPredictor predictor(&forest_or.value());
  std::vector<double> got(10, -1.0);
  predictor.PredictCsrMargins(rows, got.data());
  for (const double v : got) EXPECT_EQ(v, 0.0);
}

TEST(BatchPredictorTest, SingleLeafTreesAccumulateLeafWeights) {
  Rng rng(11);
  // max_layers == 1 forces every tree to a single leaf.
  const GbdtModel model = MakeRandomModel(rng, 5, 1, 1, 4);
  const CsrMatrix rows = MakeRandomRows(rng, 7, 4, 0.5);
  const std::vector<double> want = ReferenceMargins(model, rows);
  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());
  EXPECT_EQ(forest_or->num_internal_nodes(), 0u);
  EXPECT_EQ(forest_or->num_leaves(), 5u);
  const BatchPredictor predictor(&forest_or.value());
  std::vector<double> got(want.size(), -1.0);
  predictor.PredictCsrMargins(rows, got.data());
  ExpectBitIdentical(want, got, "single-leaf");
}

TEST(BatchPredictorTest, ThreadPartitionEdgeCases) {
  Rng rng(21);
  const GbdtModel model = MakeRandomModel(rng, 3, 4, 1, 10);
  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());
  for (const uint32_t n : {0u, 1u, 3u}) {
    const CsrMatrix rows = MakeRandomRows(rng, n, 10, 0.5);
    const std::vector<double> want = ReferenceMargins(model, rows);
    ServeOptions options;
    options.num_threads = 8;  // More threads than rows.
    const BatchPredictor predictor(&forest_or.value(), options);
    std::vector<double> got(want.size(), -1.0);
    predictor.PredictCsrMargins(rows, got.data());
    ExpectBitIdentical(want, got, "n=" + std::to_string(n));
    // begin == end is a no-op.
    predictor.PredictCsrMargins(rows, 0, 0, got.data());
  }
}

// Forests whose feature space exceeds the scatter-scratch cap fall back to
// per-node binary search — same results, no giant allocation.
TEST(BatchPredictorTest, HugeFeatureSpaceFallsBackToBinarySearch) {
  const FeatureId huge = (1u << 22) + 12345;
  GbdtModel model(Task::kBinary, 2, 0.1);
  Tree t(2, 1);
  t.SetSplit(0, huge, 0.0f, 0, false, 1.0);
  t.SetLeaf(1, {-1.0f});
  t.SetLeaf(2, {1.0f});
  model.AddTree(std::move(t));
  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());

  CsrMatrix rows;
  rows.set_num_cols(huge + 1);
  rows.StartRow();
  rows.PushEntry(3, 0.5f);
  rows.PushEntry(huge, -0.5f);  // Goes left.
  rows.StartRow();
  rows.PushEntry(huge, 0.5f);  // Goes right.
  rows.StartRow();             // Missing -> default right.

  const std::vector<double> want = ReferenceMargins(model, rows);
  const BatchPredictor predictor(&forest_or.value());
  std::vector<double> got(want.size(), -1.0);
  predictor.PredictCsrMargins(rows, got.data());
  ExpectBitIdentical(want, got, "huge-feature");
}

TEST(BatchPredictorTest, ProbaMatchesModelLink) {
  Rng rng(31);
  for (const uint32_t dims : {1u, 3u}) {
    const GbdtModel model = MakeRandomModel(rng, 4, 4, dims, 12);
    const CsrMatrix rows = MakeRandomRows(rng, 23, 12, 0.4);
    auto forest_or = FlatForest::FromModel(model);
    ASSERT_TRUE(forest_or.ok());
    const BatchPredictor predictor(&forest_or.value());
    std::vector<double> got(static_cast<size_t>(rows.num_rows()) * dims);
    predictor.PredictCsrProba(rows, 0, rows.num_rows(), got.data());
    std::vector<double> want(dims);
    for (InstanceId i = 0; i < rows.num_rows(); ++i) {
      model.PredictProba(rows.RowFeatures(i), rows.RowValues(i),
                         want.data());
      EXPECT_EQ(0, std::memcmp(want.data(),
                               got.data() + static_cast<size_t>(i) * dims,
                               dims * sizeof(double)))
          << "dims=" << dims << " row=" << i;
    }
  }
}

TEST(ServeOptionsTest, ValidateRejectsBadKnobs) {
  ServeOptions options;
  EXPECT_TRUE(options.Validate().ok());
  options.num_threads = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.num_threads = 1;
  options.row_block = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
  options.row_block = 1;
  options.tree_block = 0;
  EXPECT_EQ(options.Validate().code(), StatusCode::kInvalidArgument);
}

// ---- Trained-model end-to-end --------------------------------------------

// Train a small model per quadrant, flatten it, and serve held-out rows:
// the batched path must match PredictDatasetMargins byte for byte.
TEST(ServeEndToEndTest, TrainedQuadrantModelsServeBitIdentical) {
  SyntheticConfig config;
  config.num_instances = 600;
  config.num_features = 25;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = 5;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, held_out] = data.SplitTail(0.25);

  DistTrainOptions options;
  options.params.num_trees = 4;
  options.params.num_layers = 4;
  options.params.num_candidate_splits = 16;
  for (const Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                           Quadrant::kQD4}) {
    Cluster cluster(2);
    const GbdtModel model =
        TrainDistributed(cluster, train, q, options).model;
    ASSERT_GT(model.num_trees(), 0u);
    const std::vector<double> want = model.PredictDatasetMargins(held_out);

    auto forest_or = FlatForest::FromModel(model);
    ASSERT_TRUE(forest_or.ok()) << forest_or.status().ToString();
    ServeOptions serve_options;
    serve_options.num_threads = 3;
    serve_options.row_block = 32;
    const BatchPredictor predictor(&forest_or.value(), serve_options);
    std::vector<double> got(want.size(), -1.0);
    predictor.PredictCsrMargins(held_out.matrix(), got.data());
    ExpectBitIdentical(want, got,
                       std::string("quadrant ") + QuadrantToString(q));
  }
}

TEST(ServeEndToEndTest, TrainedMultiClassModelServesBitIdentical) {
  SyntheticConfig config;
  config.num_instances = 500;
  config.num_features = 20;
  config.num_classes = 3;
  config.density = 0.4;
  config.seed = 13;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, held_out] = data.SplitTail(0.2);

  GbdtParams params;
  params.num_trees = 5;
  params.num_layers = 4;
  params.num_candidate_splits = 16;
  Trainer trainer(params);
  auto model_or = trainer.Train(train);
  ASSERT_TRUE(model_or.ok()) << model_or.status().ToString();
  const GbdtModel& model = model_or.value();

  const std::vector<double> want = model.PredictDatasetMargins(held_out);
  auto forest_or = FlatForest::FromModel(model);
  ASSERT_TRUE(forest_or.ok());
  ServeOptions serve_options;
  serve_options.num_threads = 2;
  const BatchPredictor predictor(&forest_or.value(), serve_options);
  std::vector<double> got(want.size(), -1.0);
  predictor.PredictCsrMargins(held_out.matrix(), got.data());
  ExpectBitIdentical(want, got, "multiclass trainer");
}

// ---- Fuzz / robustness ----------------------------------------------------

// Deserializes a Tree from raw bytes (no model framing, no CRC) so damaged
// streams can yield structurally inconsistent trees — the worst case
// FlatForest::FromModel must survive.
StatusOr<Tree> TreeFromBytes(const std::vector<uint8_t>& bytes) {
  ByteReader reader(bytes);
  Tree tree;
  VERO_RETURN_IF_ERROR(Tree::Deserialize(&reader, &tree));
  return tree;
}

// FromModel on models deserialized from every truncation of the serialized
// byte stream: Deserialize may fail (fine) or succeed with an arbitrary
// structure, in which case FromModel must return a Status — never crash.
TEST(FlatForestFuzzTest, EveryTruncationIsHandled) {
  Rng rng(77);
  const GbdtModel model = MakeRandomModel(rng, 2, 4, 1, 10);
  ByteWriter writer;
  model.SerializeTo(&writer);
  const std::vector<uint8_t>& bytes = writer.data();

  int parsed = 0, flattened = 0;
  for (size_t len = 0; len <= bytes.size(); ++len) {
    ByteReader reader(bytes.data(), len);
    GbdtModel damaged;
    if (!GbdtModel::Deserialize(&reader, &damaged).ok()) continue;
    ++parsed;
    auto forest_or = FlatForest::FromModel(damaged);
    if (forest_or.ok()) ++flattened;
  }
  // The full stream must parse and flatten.
  EXPECT_GE(parsed, 1);
  EXPECT_GE(flattened, 1);
}

// Same ladder with single-bit flips at every byte: whatever Deserialize
// accepts, FromModel must either flatten (and then serve safely) or reject
// with a Status.
TEST(FlatForestFuzzTest, EveryByteFlipIsHandled) {
  Rng rng(78);
  const GbdtModel model = MakeRandomModel(rng, 2, 3, 1, 10);
  ByteWriter writer;
  model.SerializeTo(&writer);
  const std::vector<uint8_t> original = writer.data();

  CsrMatrix rows;
  rows.set_num_cols(1u << 16);  // Bit-flipped feature ids can be large.
  rows.StartRow();
  rows.PushEntry(2, 0.5f);
  rows.PushEntry(7, -1.5f);

  for (size_t offset = 0; offset < original.size(); ++offset) {
    std::vector<uint8_t> damaged = original;
    damaged[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    ByteReader reader(damaged);
    GbdtModel parsed;
    if (!GbdtModel::Deserialize(&reader, &parsed).ok()) continue;
    auto forest_or = FlatForest::FromModel(parsed);
    if (!forest_or.ok()) continue;
    // A validated forest must be traversable without faulting, whatever
    // garbage its thresholds carry.
    const BatchPredictor predictor(&forest_or.value());
    std::vector<double> out(forest_or->num_dims(), 0.0);
    predictor.PredictCsrMargins(rows, 0, 1, out.data());
  }
}

TEST(FlatForestTest, RejectsInternalNodeWithMissingChildren) {
  // max_layers=2, one used node: the root claims to be internal but its
  // children were never materialized in the stream.
  ByteWriter writer;
  writer.WriteU32(2);  // max_layers
  writer.WriteU32(1);  // num_dims
  writer.WriteU32(1);  // used
  writer.WriteU32(0);  // node id
  writer.WriteU8(1);   // internal
  writer.WriteU32(3);  // feature
  writer.WriteF32(0.5f);
  writer.WriteU16(0);
  writer.WriteBool(false);
  writer.WriteF64(0.0);
  writer.WriteVector(std::vector<float>{});
  auto tree_or = TreeFromBytes(writer.data());
  ASSERT_TRUE(tree_or.ok()) << tree_or.status().ToString();

  GbdtModel model(Task::kBinary, 2, 0.1);
  model.AddTree(std::move(tree_or).value());
  const auto forest_or = FlatForest::FromModel(model);
  ASSERT_FALSE(forest_or.ok());
  EXPECT_EQ(forest_or.status().code(), StatusCode::kCorruption);
}

TEST(FlatForestTest, RejectsInternalNodeAtLastLayer) {
  // max_layers=1: the root is the only slot, yet the stream marks it
  // internal — its children land beyond the node array.
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(1);
  writer.WriteU32(1);
  writer.WriteU32(0);
  writer.WriteU8(1);  // internal
  writer.WriteU32(0);
  writer.WriteF32(0.0f);
  writer.WriteU16(0);
  writer.WriteBool(true);
  writer.WriteF64(0.0);
  writer.WriteVector(std::vector<float>{});
  auto tree_or = TreeFromBytes(writer.data());
  ASSERT_TRUE(tree_or.ok());

  GbdtModel model(Task::kBinary, 2, 0.1);
  model.AddTree(std::move(tree_or).value());
  const auto forest_or = FlatForest::FromModel(model);
  ASSERT_FALSE(forest_or.ok());
  EXPECT_EQ(forest_or.status().code(), StatusCode::kCorruption);
}

TEST(FlatForestTest, RejectsEmptyTreeAndDimensionMismatch) {
  // A stream declaring zero used nodes parses into a rootless tree.
  ByteWriter writer;
  writer.WriteU32(3);
  writer.WriteU32(1);
  writer.WriteU32(0);  // used == 0: no root.
  auto rootless_or = TreeFromBytes(writer.data());
  ASSERT_TRUE(rootless_or.ok());
  GbdtModel rootless(Task::kBinary, 2, 0.1);
  rootless.AddTree(std::move(rootless_or).value());
  EXPECT_EQ(FlatForest::FromModel(rootless).status().code(),
            StatusCode::kCorruption);

  // A 2-dim tree inside a binary (1-dim margin) model.
  GbdtModel mismatched(Task::kBinary, 2, 0.1);
  mismatched.AddTree(Tree(2, 2));
  EXPECT_EQ(FlatForest::FromModel(mismatched).status().code(),
            StatusCode::kCorruption);
}

// ---- Tree::Route bounds regression ---------------------------------------

// The malformed trees above must also be unable to walk Tree::Route off the
// node array: the bounds guard dies with a diagnostic instead of reading
// out of bounds (regression for the 2i+1/2i+2 indexing).
TEST(TreeRouteBoundsDeathTest, InternalNodeAtLastLayerDies) {
  ByteWriter writer;
  writer.WriteU32(1);
  writer.WriteU32(1);
  writer.WriteU32(1);
  writer.WriteU32(0);
  writer.WriteU8(1);  // internal at the only slot
  writer.WriteU32(0);
  writer.WriteF32(0.0f);
  writer.WriteU16(0);
  writer.WriteBool(true);
  writer.WriteF64(0.0);
  writer.WriteVector(std::vector<float>{});
  auto tree_or = TreeFromBytes(writer.data());
  ASSERT_TRUE(tree_or.ok());
  const std::vector<FeatureId> features;
  const std::vector<float> values;
  EXPECT_DEATH(tree_or->Route(features, values), "walks off the node array");
}

TEST(TreeRouteBoundsDeathTest, RouteOntoUnusedNodeDies) {
  ByteWriter writer;
  writer.WriteU32(2);
  writer.WriteU32(1);
  writer.WriteU32(1);
  writer.WriteU32(0);
  writer.WriteU8(1);  // internal root, children never materialized
  writer.WriteU32(5);
  writer.WriteF32(0.5f);
  writer.WriteU16(0);
  writer.WriteBool(false);
  writer.WriteF64(0.0);
  writer.WriteVector(std::vector<float>{});
  auto tree_or = TreeFromBytes(writer.data());
  ASSERT_TRUE(tree_or.ok());
  const std::vector<FeatureId> features;
  const std::vector<float> values;
  EXPECT_DEATH(tree_or->Route(features, values), "unused node");
}

}  // namespace
}  // namespace vero
