// Delta checkpoint chains: the VCKD wire format under fuzz-style damage,
// byte-equal reconstruction against full-mode chains (including across
// rotation/GC and writer re-adoption), the corruption ladder (bit-flip and
// truncation of the newest chain file and the manifest, in both full and
// delta modes), the constructor's stale-*.tmp sweep, and manifest v2
// round-tripping.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "quadrants/checkpoint.h"
#include "sketch/candidate_splits.h"

namespace vero {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

GbdtModel ModelWithTrees(uint32_t n) {
  GbdtModel model(Task::kBinary, 2, 0.3);
  for (uint32_t i = 0; i < n; ++i) {
    Tree t(3, 1);
    t.SetSplit(0, i % 7, 1.5f + static_cast<float>(i), 2, false, 3.0);
    t.SetLeaf(1, {-0.5f});
    t.SetLeaf(2, {0.5f});
    model.AddTree(std::move(t));
  }
  return model;
}

CandidateSplits TinySplits() {
  return CandidateSplits(16, {{0.5f, 1.5f}, {}, {2.0f, 3.0f}});
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Commits checkpoints trees_done = 1..n through one writer.
void FillChain(const std::string& dir, uint32_t n,
               CheckpointWriter::Options options) {
  options.dir = dir;
  CheckpointWriter writer(options);
  const CandidateSplits splits = TinySplits();
  for (uint32_t t = 1; t <= n; ++t) {
    writer.Submit(ModelWithTrees(t), t, &splits);
  }
  writer.Flush();
  ASSERT_TRUE(writer.write_status().ok())
      << writer.write_status().ToString();
}

CheckpointWriter::Options DeltaOptions(uint32_t keep_last_n = 0,
                                       uint32_t full_every = 8) {
  CheckpointWriter::Options options;
  options.keep_last_n = keep_last_n;
  options.delta = true;
  options.full_every = full_every;
  return options;
}

// Canonical byte projection of the restorable state.
std::vector<uint8_t> LatestBytes(const std::string& dir) {
  const auto loaded = LoadLatestCheckpoint(dir);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
  if (!loaded.ok()) return {};
  return SerializeCheckpoint(*loaded);
}

// ---------------------------------------------------------------------------
// VCKD wire format.
// ---------------------------------------------------------------------------

TEST(DeltaWireTest, SerializeDeserializeRoundTrip) {
  const GbdtModel model = ModelWithTrees(5);
  DeltaCheckpoint delta;
  delta.trees_done = 5;
  delta.base_trees = 3;
  delta.trees = {model.tree(3), model.tree(4)};
  const std::vector<uint8_t> bytes = SerializeDeltaCheckpoint(delta);

  DeltaCheckpoint out;
  ASSERT_TRUE(DeserializeDeltaCheckpoint(bytes, &out).ok());
  EXPECT_EQ(out.trees_done, 5u);
  EXPECT_EQ(out.base_trees, 3u);
  ASSERT_EQ(out.trees.size(), 2u);
  EXPECT_TRUE(out.trees[0] == model.tree(3));
  EXPECT_TRUE(out.trees[1] == model.tree(4));
}

TEST(DeltaWireTest, FullAndDeltaMagicsAreDistinct) {
  // A full checkpoint buffer must not parse as a delta and vice versa.
  TrainCheckpoint full;
  full.trees_done = 2;
  full.model = ModelWithTrees(2);
  const std::vector<uint8_t> full_bytes = SerializeCheckpoint(full);
  DeltaCheckpoint delta_out;
  EXPECT_EQ(DeserializeDeltaCheckpoint(full_bytes, &delta_out).code(),
            StatusCode::kCorruption);

  DeltaCheckpoint delta;
  delta.trees_done = 3;
  delta.base_trees = 2;
  delta.trees = {ModelWithTrees(3).tree(2)};
  TrainCheckpoint full_out;
  EXPECT_EQ(DeserializeCheckpoint(SerializeDeltaCheckpoint(delta), &full_out)
                .code(),
            StatusCode::kCorruption);
}

TEST(DeltaWireTest, AllBitFlipsAndTruncationsAreCorruption) {
  const GbdtModel model = ModelWithTrees(4);
  DeltaCheckpoint delta;
  delta.trees_done = 4;
  delta.base_trees = 2;
  delta.trees = {model.tree(2), model.tree(3)};
  const std::vector<uint8_t> good = SerializeDeltaCheckpoint(delta);

  DeltaCheckpoint out;
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    EXPECT_EQ(DeserializeDeltaCheckpoint(bad, &out).code(),
              StatusCode::kCorruption)
        << "offset " << offset;
  }
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> bad(good.begin(),
                                   good.begin() + static_cast<ptrdiff_t>(len));
    EXPECT_EQ(DeserializeDeltaCheckpoint(bad, &out).code(),
              StatusCode::kCorruption)
        << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// Manifest v2: kinds and bases round-trip.
// ---------------------------------------------------------------------------

TEST(ManifestV2Test, KindAndBaseRoundTrip) {
  CheckpointManifest manifest;
  manifest.entries.push_back(
      {"ckpt-000000.vckp", 3, 100, 0x11, kManifestEntryFull, 0});
  manifest.entries.push_back(
      {"ckpt-000001.vckp", 5, 40, 0x22, kManifestEntryDelta, 3});
  CheckpointManifest out;
  ASSERT_TRUE(DeserializeManifest(SerializeManifest(manifest), &out).ok());
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].kind, kManifestEntryFull);
  EXPECT_EQ(out.entries[0].base_trees, 0u);
  EXPECT_EQ(out.entries[1].kind, kManifestEntryDelta);
  EXPECT_EQ(out.entries[1].base_trees, 3u);
}

TEST(ManifestV2Test, DeltaEntryWithBadBaseIsCorruption) {
  CheckpointManifest manifest;
  manifest.entries.push_back(
      {"ckpt-000000.vckp", 3, 100, 0x11, kManifestEntryDelta, 3});
  std::vector<uint8_t> bytes = SerializeManifest(manifest);
  CheckpointManifest out;
  EXPECT_EQ(DeserializeManifest(bytes, &out).code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Delta chains on disk: kinds, reconstruction, rotation/GC, re-adoption.
// ---------------------------------------------------------------------------

TEST(DeltaChainTest, WriterEmitsFullAnchorsAtTheConfiguredCadence) {
  const std::string dir = FreshDir("delta_cadence");
  FillChain(dir, 6, DeltaOptions(/*keep_last_n=*/0, /*full_every=*/3));

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 6u);
  // Commit pattern with full_every = 3: F D D F D D.
  const uint8_t expected[] = {kManifestEntryFull, kManifestEntryDelta,
                              kManifestEntryDelta, kManifestEntryFull,
                              kManifestEntryDelta, kManifestEntryDelta};
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(manifest->entries[i].kind, expected[i]) << "entry " << i;
    if (expected[i] == kManifestEntryDelta) {
      EXPECT_EQ(manifest->entries[i].base_trees,
                manifest->entries[i - 1].trees_done)
          << "entry " << i;
      EXPECT_LT(manifest->entries[i].bytes, manifest->entries[0].bytes)
          << "delta entry " << i << " not smaller than a full checkpoint";
    }
  }
}

TEST(DeltaChainTest, ReconstructionIsByteEqualToFullMode) {
  const std::string full_dir = FreshDir("delta_vs_full_full");
  const std::string delta_dir = FreshDir("delta_vs_full_delta");
  CheckpointWriter::Options full_options;
  full_options.keep_last_n = 0;
  FillChain(full_dir, 7, full_options);
  FillChain(delta_dir, 7, DeltaOptions(/*keep_last_n=*/0, /*full_every=*/4));

  const std::vector<uint8_t> from_full = LatestBytes(full_dir);
  const std::vector<uint8_t> from_delta = LatestBytes(delta_dir);
  ASSERT_FALSE(from_full.empty());
  EXPECT_EQ(from_delta, from_full);
}

TEST(DeltaChainTest, GcKeepsTheFullAnchorOfARetainedDeltaSuffix) {
  const std::string dir = FreshDir("delta_gc_anchor");
  // 7 commits, F D D D F D D; keep_last_n = 2 would naively keep only the
  // two newest deltas — GC must extend the window back to their anchor.
  FillChain(dir, 7, DeltaOptions(/*keep_last_n=*/2, /*full_every=*/4));

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_GE(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[0].kind, kManifestEntryFull)
      << "retained chain does not start at a full anchor";
  for (const ManifestEntry& entry : manifest->entries) {
    EXPECT_TRUE(fs::exists(dir + "/" + entry.file)) << entry.file;
  }

  // The reconstruction is still byte-equal to an un-GC'd full-mode chain.
  const std::string ref_dir = FreshDir("delta_gc_anchor_ref");
  CheckpointWriter::Options ref_options;
  ref_options.keep_last_n = 0;
  FillChain(ref_dir, 7, ref_options);
  EXPECT_EQ(LatestBytes(dir), LatestBytes(ref_dir));
}

TEST(DeltaChainTest, ReadoptedWriterStartsItsChainWithAFull) {
  const std::string dir = FreshDir("delta_readopt");
  FillChain(dir, 3, DeltaOptions());
  // A second writer (a recovery incarnation) has no pipeline history, so
  // its first commit must be full even in delta mode.
  FillChain(dir, 5, DeltaOptions());

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 8u);
  EXPECT_EQ(manifest->entries[3].kind, kManifestEntryFull)
      << "re-adopting writer did not anchor its chain";
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->trees_done, 5u);
  EXPECT_EQ(loaded->model.num_trees(), 5u);
}

TEST(DeltaChainTest, AsyncBackpressureMergesDeltasWithoutLosingTrees) {
  const std::string dir = FreshDir("delta_async");
  CheckpointWriter::Options options = DeltaOptions();
  options.dir = dir;
  options.async = true;
  const CandidateSplits splits = TinySplits();
  {
    CheckpointWriter writer(options);
    // Rapid-fire: pending deltas may be coalesced (newest wins), but the
    // merged delta must still cover every tree since its base.
    for (uint32_t t = 1; t <= 9; ++t) {
      writer.Submit(ModelWithTrees(t), t, &splits);
    }
    writer.Flush();
    ASSERT_TRUE(writer.write_status().ok());
    const auto latest = writer.Latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->trees_done, 9u);
    EXPECT_EQ(latest->model.num_trees(), 9u);
  }
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 9u);
  // Reconstructed forest is the real 9-tree model, tree by tree.
  const GbdtModel expected = ModelWithTrees(9);
  for (uint32_t t = 0; t < 9; ++t) {
    EXPECT_TRUE(loaded->model.tree(t) == expected.tree(t)) << "tree " << t;
  }
}

// ---------------------------------------------------------------------------
// Corruption ladder: newest chain file and manifest damaged independently,
// in both full and delta modes.
// ---------------------------------------------------------------------------

class CorruptionLadderTest : public ::testing::TestWithParam<bool> {
 protected:
  // Builds a 5-entry chain in the parameterized mode and returns the dir.
  std::string BuildChain(const std::string& name) {
    const std::string dir = FreshDir(name);
    CheckpointWriter::Options options;
    options.keep_last_n = 0;
    if (GetParam()) {
      options.delta = true;
      options.full_every = 3;  // F D D F D: newest entry is a delta.
    }
    FillChain(dir, 5, options);
    return dir;
  }

  std::string NewestChainFile(const std::string& dir) {
    const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
    EXPECT_TRUE(manifest.ok());
    return dir + "/" + manifest->entries.back().file;
  }
};

TEST_P(CorruptionLadderTest, BitFlippedNewestFallsBackToPreviousEntry) {
  const std::string dir = BuildChain("ladder_flip_newest");
  const std::string newest = NewestChainFile(dir);
  std::vector<uint8_t> bytes = ReadFile(newest);
  ASSERT_GT(bytes.size(), 16u);
  bytes[bytes.size() / 2] ^= 0x10;
  WriteFile(newest, bytes);
  fs::remove(dir + "/latest.vckp");  // Alias duplicates the damaged file.

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 4u);
  EXPECT_EQ(loaded->model.num_trees(), 4u);
}

TEST_P(CorruptionLadderTest, TruncatedNewestFallsBackToPreviousEntry) {
  const std::string dir = BuildChain("ladder_trunc_newest");
  const std::string newest = NewestChainFile(dir);
  std::vector<uint8_t> bytes = ReadFile(newest);
  bytes.resize(bytes.size() / 2);
  WriteFile(newest, bytes);
  fs::remove(dir + "/latest.vckp");

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 4u);
}

TEST_P(CorruptionLadderTest, BitFlippedManifestFallsBackToDirectoryScan) {
  const std::string dir = BuildChain("ladder_flip_manifest");
  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::vector<uint8_t> bytes = ReadFile(manifest_path);
  bytes[bytes.size() / 3] ^= 0x08;
  WriteFile(manifest_path, bytes);

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 5u);
  EXPECT_EQ(loaded->model.num_trees(), 5u);
}

TEST_P(CorruptionLadderTest, TruncatedManifestFallsBackToDirectoryScan) {
  const std::string dir = BuildChain("ladder_trunc_manifest");
  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::vector<uint8_t> bytes = ReadFile(manifest_path);
  bytes.resize(bytes.size() / 2);
  WriteFile(manifest_path, bytes);

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 5u);
}

// Damaging a delta's full anchor strands the whole dependent suffix: the
// loader must fall back past ALL of it to the previous restorable entry.
TEST_P(CorruptionLadderTest, DamagedAnchorDropsTheDependentSuffix) {
  if (!GetParam()) GTEST_SKIP() << "delta-mode only";
  const std::string dir = BuildChain("ladder_anchor");
  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  // Chain is F(1) D(2) D(3) F(4) D(5): damage the second full anchor.
  ASSERT_EQ(manifest->entries[3].kind, kManifestEntryFull);
  const std::string anchor = dir + "/" + manifest->entries[3].file;
  std::vector<uint8_t> bytes = ReadFile(anchor);
  bytes[bytes.size() / 2] ^= 0x01;
  WriteFile(anchor, bytes);
  fs::remove(dir + "/latest.vckp");

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // Entry 5's delta is intact but unrestorable without its anchor; the
  // newest restorable state is the first sub-chain's head, trees_done = 3.
  EXPECT_EQ(loaded->trees_done, 3u);
  EXPECT_EQ(loaded->model.num_trees(), 3u);
}

TEST_P(CorruptionLadderTest, EverythingDamagedIsCorruptionNeverCrash) {
  const std::string dir = BuildChain("ladder_all");
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::vector<uint8_t> bytes = ReadFile(entry.path().string());
    if (bytes.size() > 8) bytes[bytes.size() / 2] ^= 0xff;
    bytes.resize(bytes.size() > 3 ? bytes.size() - 3 : 0);
    WriteFile(entry.path().string(), bytes);
  }
  EXPECT_EQ(LoadLatestCheckpoint(dir).status().code(),
            StatusCode::kCorruption);
}

INSTANTIATE_TEST_SUITE_P(FullAndDelta, CorruptionLadderTest,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Delta" : "Full";
                         });

// ---------------------------------------------------------------------------
// Startup sweep of orphaned *.tmp files.
// ---------------------------------------------------------------------------

TEST(StaleTmpSweepTest, ConstructorCollectsPlantedOrphans) {
  const std::string dir = FreshDir("tmp_sweep");
  FillChain(dir, 2, CheckpointWriter::Options{});

  // A crash between write and rename leaves .tmp siblings of our own file
  // names; plant one of each flavor plus a foreign file that must survive.
  const std::string chain_tmp = dir + "/ckpt-000007.vckp.tmp";
  const std::string alias_tmp = dir + "/latest.vckp.tmp";
  const std::string manifest_tmp =
      dir + "/" + std::string(kManifestFileName) + ".tmp";
  const std::string foreign = dir + "/user_notes.txt.tmp";
  WriteFile(chain_tmp, {1, 2, 3});
  WriteFile(alias_tmp, {4, 5});
  WriteFile(manifest_tmp, {6});
  WriteFile(foreign, {7, 8});

  CheckpointWriter::Options options;
  options.dir = dir;
  CheckpointWriter writer(options);

  EXPECT_FALSE(fs::exists(chain_tmp));
  EXPECT_FALSE(fs::exists(alias_tmp));
  EXPECT_FALSE(fs::exists(manifest_tmp));
  EXPECT_TRUE(fs::exists(foreign)) << "swept a file it does not own";

  // The adopted chain is untouched and still restorable.
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 2u);
}

}  // namespace
}  // namespace vero
