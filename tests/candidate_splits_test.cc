#include "sketch/candidate_splits.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"
#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeSimple() {
  // Feature 0: values 1..10 across rows; feature 1: constant 5; feature 2:
  // present only on even rows.
  CsrMatrix m;
  m.set_num_cols(3);
  std::vector<float> labels;
  for (int i = 0; i < 10; ++i) {
    m.StartRow();
    m.PushEntry(0, static_cast<float>(i + 1));
    m.PushEntry(1, 5.0f);
    if (i % 2 == 0) m.PushEntry(2, static_cast<float>(i));
    labels.push_back(static_cast<float>(i % 2));
  }
  return Dataset(std::move(m), std::move(labels), Task::kBinary, 2);
}

TEST(CandidateSplitsTest, ProposesPerFeature) {
  const Dataset d = MakeSimple();
  const CandidateSplits splits = ProposeCandidateSplits(d, 5);
  EXPECT_EQ(splits.num_features(), 3u);
  EXPECT_EQ(splits.max_bins(), 5u);
  EXPECT_GE(splits.NumBins(0), 2u);
  EXPECT_LE(splits.NumBins(0), 5u);
  EXPECT_EQ(splits.NumBins(1), 1u);  // Constant feature: single split.
  EXPECT_GE(splits.NumBins(2), 2u);
}

TEST(CandidateSplitsTest, SplitsAreSortedAndCoverMax) {
  const Dataset d = MakeSimple();
  const CandidateSplits splits = ProposeCandidateSplits(d, 4);
  for (FeatureId f = 0; f < 3; ++f) {
    const auto& s = splits.FeatureSplits(f);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
  }
  EXPECT_EQ(splits.FeatureSplits(0).back(), 10.0f);
  EXPECT_EQ(splits.FeatureSplits(1).back(), 5.0f);
}

TEST(CandidateSplitsTest, BinForValueIsLowerBound) {
  CandidateSplits splits(4, {{1.0f, 2.0f, 4.0f, 8.0f}});
  EXPECT_EQ(splits.BinForValue(0, 0.5f), 0);
  EXPECT_EQ(splits.BinForValue(0, 1.0f), 0);
  EXPECT_EQ(splits.BinForValue(0, 1.5f), 1);
  EXPECT_EQ(splits.BinForValue(0, 4.0f), 2);
  EXPECT_EQ(splits.BinForValue(0, 8.0f), 3);
  // Values above the max clamp to the top bin.
  EXPECT_EQ(splits.BinForValue(0, 100.0f), 3);
}

TEST(CandidateSplitsTest, BinningPropertyHolds) {
  // Property: value <= splits[bin], and bin is the smallest such index.
  SyntheticConfig config;
  config.num_instances = 2000;
  config.num_features = 20;
  config.density = 0.5;
  const Dataset d = GenerateSynthetic(config);
  const CandidateSplits splits = ProposeCandidateSplits(d, 16);
  const std::vector<BinId> bins = BinValues(d.matrix(), splits);
  const auto& features = d.matrix().features();
  const auto& values = d.matrix().values();
  for (size_t k = 0; k < features.size(); ++k) {
    const auto& s = splits.FeatureSplits(features[k]);
    ASSERT_LT(bins[k], s.size());
    EXPECT_LE(values[k], s[bins[k]]);
    if (bins[k] > 0) EXPECT_GT(values[k], s[bins[k] - 1]);
  }
}

TEST(CandidateSplitsTest, TotalBins) {
  CandidateSplits splits(4, {{1.0f, 2.0f}, {}, {3.0f}});
  EXPECT_EQ(splits.TotalBins(), 3u);
}

TEST(CandidateSplitsTest, SerializeRoundTrip) {
  const Dataset d = MakeSimple();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  ByteWriter w;
  splits.SerializeTo(&w);
  ByteReader r(w.data());
  CandidateSplits loaded;
  ASSERT_TRUE(CandidateSplits::Deserialize(&r, &loaded).ok());
  EXPECT_TRUE(loaded == splits);
}

TEST(CandidateSplitsTest, UnseenFeatureHasNoBins) {
  CsrMatrix m;
  m.set_num_cols(5);
  m.StartRow();
  m.PushEntry(1, 1.0f);
  Dataset d(std::move(m), {0.0f}, Task::kBinary, 2);
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  EXPECT_EQ(splits.NumBins(0), 0u);
  EXPECT_EQ(splits.NumBins(4), 0u);
  EXPECT_GE(splits.NumBins(1), 1u);
}

TEST(CandidateSplitsTest, QuantileSplitsRoughlyBalanceMass) {
  // With uniform data and q bins, each bin should hold ~N/q values.
  Rng rng(3);
  CsrMatrix m;
  m.set_num_cols(1);
  const int n = 10000;
  std::vector<float> labels(n, 0.0f);
  for (int i = 0; i < n; ++i) {
    m.StartRow();
    m.PushEntry(0, static_cast<float>(rng.NextDouble()));
  }
  Dataset d(std::move(m), std::move(labels), Task::kBinary, 2);
  const uint32_t q = 10;
  const CandidateSplits splits = ProposeCandidateSplits(d, q);
  const std::vector<BinId> bins = BinValues(d.matrix(), splits);
  std::vector<int> counts(splits.NumBins(0), 0);
  for (BinId b : bins) ++counts[b];
  for (int c : counts) {
    EXPECT_NEAR(c, n / static_cast<int>(q), n / q * 0.5);
  }
}

}  // namespace
}  // namespace vero
