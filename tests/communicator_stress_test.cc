// Randomized stress tests of the cluster substrate: arbitrary buffer sizes
// (including empty and odd), varying worker counts, and long mixed op
// sequences, cross-checked against locally computed expectations.

#include <gtest/gtest.h>

#include "cluster/communicator.h"
#include "common/random.h"

namespace vero {
namespace {

class CommStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CommStressTest, AllReduceRandomSizes) {
  const int w = GetParam();
  Cluster cluster(w);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{17}, size_t{1000},
                   size_t{4097}}) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n);
      for (size_t i = 0; i < n; ++i) {
        data[i] = static_cast<double>(i % 7) * (ctx.rank() + 1);
      }
      ctx.AllReduceSum(data);
      const double rank_sum = w * (w + 1) / 2.0;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(data[i], static_cast<double>(i % 7) * rank_sum)
            << "n=" << n << " i=" << i;
      }
    });
  }
}

TEST_P(CommStressTest, ReduceScatterSliceSums) {
  const int w = GetParam();
  Cluster cluster(w);
  for (size_t n : {size_t{1}, size_t{7}, size_t{w * 3 + 1}, size_t{513}}) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n);
      for (size_t i = 0; i < n; ++i) data[i] = i + 0.25 * ctx.rank();
      ctx.ReduceScatterSum(data);
      const size_t begin = ctx.SliceBegin(n, ctx.rank());
      const size_t end = ctx.SliceEnd(n, ctx.rank());
      const double rank_quarter_sum = 0.25 * w * (w - 1) / 2.0;
      for (size_t i = begin; i < end; ++i) {
        ASSERT_DOUBLE_EQ(data[i], w * static_cast<double>(i) +
                                      rank_quarter_sum);
      }
    });
  }
}

TEST_P(CommStressTest, AllToAllVariableSizes) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    Rng rng(1000 + ctx.rank());
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<uint8_t>> to(w);
      for (int dest = 0; dest < w; ++dest) {
        // Deterministic per (src, dest, round) so receivers can verify.
        const size_t len = (ctx.rank() * 31 + dest * 7 + round) % 20;
        to[dest].assign(len, static_cast<uint8_t>(ctx.rank() * 16 + dest));
      }
      std::vector<std::vector<uint8_t>> from;
      ctx.AllToAll(std::move(to), &from);
      for (int src = 0; src < w; ++src) {
        const size_t expect_len = (src * 31 + ctx.rank() * 7 + round) % 20;
        ASSERT_EQ(from[src].size(), expect_len);
        for (uint8_t b : from[src]) {
          ASSERT_EQ(b, static_cast<uint8_t>(src * 16 + ctx.rank()));
        }
      }
    }
  });
}

TEST_P(CommStressTest, EmptyBroadcastAndGather) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<uint8_t> empty;
    ctx.Broadcast(&empty, w - 1);
    EXPECT_TRUE(empty.empty());
    std::vector<std::vector<uint8_t>> all;
    ctx.Gather(empty, 0, &all);
    if (ctx.rank() == 0) {
      EXPECT_EQ(all.size(), static_cast<size_t>(w));
    }
  });
}

TEST_P(CommStressTest, LongMixedSequenceRemainsConsistent) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    Rng rng(42);  // Same seed everywhere: identical op sequence (SPMD).
    for (int step = 0; step < 60; ++step) {
      switch (rng.Uniform(5)) {
        case 0: {
          std::vector<double> data(1 + rng.Uniform(64), 1.0);
          ctx.AllReduceSum(data);
          ASSERT_DOUBLE_EQ(data[0], static_cast<double>(w));
          break;
        }
        case 1: {
          std::vector<double> data(w + rng.Uniform(64), 2.0);
          ctx.ReduceScatterSum(data);
          const size_t b = ctx.SliceBegin(data.size(), ctx.rank());
          ASSERT_DOUBLE_EQ(data[b], 2.0 * w);
          break;
        }
        case 2: {
          const int root = static_cast<int>(rng.Uniform(w));
          std::vector<uint8_t> payload;
          if (ctx.rank() == root) payload.assign(5, 9);
          ctx.Broadcast(&payload, root);
          ASSERT_EQ(payload.size(), 5u);
          break;
        }
        case 3: {
          std::vector<uint8_t> mine = {static_cast<uint8_t>(ctx.rank())};
          std::vector<std::vector<uint8_t>> all;
          ctx.AllGather(mine, &all);
          ASSERT_EQ(all[w - 1][0], w - 1);
          break;
        }
        case 4: {
          const double m = ctx.InstrumentMax(ctx.rank() * 1.0);
          ASSERT_DOUBLE_EQ(m, w - 1.0);
          break;
        }
      }
    }
  });
  // Stats are internally consistent: sum of sent == sum of received for the
  // symmetric ops is not guaranteed op-by-op, but totals must be nonzero
  // and finite.
  const CommStats total = cluster.TotalStats();
  if (w > 1) {
    EXPECT_GT(total.num_ops, 0u);
    EXPECT_GT(total.sim_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CommStressTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---------------------------------------------------------------------------
// Fault-injection: scheduled crashes, stragglers, corrupt transfers, and
// SPMD violations must surface as Statuses under the watchdog, never as a
// deadlock.
// ---------------------------------------------------------------------------

// Invokes one collective of the given type (with a tiny payload) so the
// crash matrix below can iterate over every op kind uniformly.
Status CallCollective(WorkerContext& ctx, CollectiveOp op) {
  const int w = ctx.world_size();
  switch (op) {
    case CollectiveOp::kAllReduceSum: {
      std::vector<double> data(8, 1.0);
      return ctx.AllReduceSum(data);
    }
    case CollectiveOp::kReduceScatterSum: {
      std::vector<double> data(w + 3, 2.0);
      return ctx.ReduceScatterSum(data);
    }
    case CollectiveOp::kAllGather: {
      std::vector<uint8_t> mine(4, static_cast<uint8_t>(ctx.rank()));
      std::vector<std::vector<uint8_t>> all;
      return ctx.AllGather(mine, &all);
    }
    case CollectiveOp::kBroadcast: {
      std::vector<uint8_t> payload;
      if (ctx.rank() == 0) payload.assign(6, 7);
      return ctx.Broadcast(&payload, 0);
    }
    case CollectiveOp::kGather: {
      std::vector<uint8_t> mine(3, 1);
      std::vector<std::vector<uint8_t>> all;
      return ctx.Gather(mine, 0, &all);
    }
    case CollectiveOp::kAllToAll: {
      std::vector<std::vector<uint8_t>> to(w);
      for (int dest = 0; dest < w; ++dest) to[dest].assign(2, 5);
      std::vector<std::vector<uint8_t>> from;
      return ctx.AllToAll(std::move(to), &from);
    }
    case CollectiveOp::kBarrier:
      return ctx.Barrier();
    case CollectiveOp::kAny:
      break;
  }
  return Status::InvalidArgument("not a concrete collective");
}

// Crashing any rank at any collective type must terminate promptly: the
// crashed rank reports kUnavailable and every survivor fails its rendezvous
// (kUnavailable from the broken group, or kDeadlineExceeded if its watchdog
// fired first) instead of hanging.
TEST(CommFaultTest, CrashMatrixNeverDeadlocks) {
  constexpr CollectiveOp kOps[] = {
      CollectiveOp::kAllReduceSum, CollectiveOp::kReduceScatterSum,
      CollectiveOp::kAllGather,    CollectiveOp::kBroadcast,
      CollectiveOp::kGather,       CollectiveOp::kAllToAll,
      CollectiveOp::kBarrier,
  };
  const int w = 3;
  for (CollectiveOp op : kOps) {
    for (int victim = 0; victim < w; ++victim) {
      SCOPED_TRACE(std::string(CollectiveOpToString(op)) +
                   " victim=" + std::to_string(victim));
      Cluster cluster(w);
      cluster.set_collective_timeout_seconds(2.0);
      cluster.InstallFaultPlan(FaultPlan().Crash(victim, op, 0));
      const std::vector<Status> statuses = cluster.TryRun(
          [&](WorkerContext& ctx) { VERO_COMM_OK(CallCollective(ctx, op)); });
      ASSERT_EQ(statuses.size(), static_cast<size_t>(w));
      EXPECT_EQ(statuses[victim].code(), StatusCode::kUnavailable);
      for (int r = 0; r < w; ++r) {
        if (r == victim) continue;
        EXPECT_TRUE(statuses[r].code() == StatusCode::kUnavailable ||
                    statuses[r].code() == StatusCode::kDeadlineExceeded)
            << "rank " << r << ": " << statuses[r].ToString();
      }
      EXPECT_EQ(cluster.dead_ranks(), std::vector<int>{victim});
    }
  }
}

// A scheduled delay is charged to the straggler's simulated clock only; the
// data and every peer's accounting are untouched.
TEST(CommFaultTest, DelayChargesOnlyTheStraggler) {
  Cluster cluster(2);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(1, CollectiveOp::kAllReduceSum, 0, 0.5));
  const std::vector<Status> statuses = cluster.TryRun([](WorkerContext& ctx) {
    std::vector<double> data(16, 1.0);
    VERO_COMM_OK(ctx.AllReduceSum(data));
    ASSERT_DOUBLE_EQ(data[0], 2.0);
  });
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_DOUBLE_EQ(cluster.worker_stats(1).fault_delay_seconds, 0.5);
  EXPECT_DOUBLE_EQ(cluster.worker_stats(0).fault_delay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cluster.worker_stats(1).sim_seconds,
                   cluster.worker_stats(0).sim_seconds + 0.5);
  EXPECT_TRUE(cluster.dead_ranks().empty());
}

// Corrupt transfers within the retry budget are retransmitted (counted in
// num_retries / retransmitted_bytes and recharged) and the op still
// delivers correct data.
TEST(CommFaultTest, CorruptTransferRetriesAndSucceeds) {
  Cluster clean(2);
  Cluster faulty(2);
  faulty.InstallFaultPlan(
      FaultPlan().Corrupt(0, CollectiveOp::kAllReduceSum, 0, /*attempts=*/2));
  const auto body = [](WorkerContext& ctx) {
    std::vector<double> data(64, 1.5);
    VERO_COMM_OK(ctx.AllReduceSum(data));
    ASSERT_DOUBLE_EQ(data[17], 3.0);
  };
  clean.Run(body);
  const std::vector<Status> statuses = faulty.TryRun(body);
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(faulty.dead_ranks().empty());

  const CommStats& f0 = faulty.worker_stats(0);
  const CommStats& c0 = clean.worker_stats(0);
  EXPECT_EQ(f0.num_retries, 2u);
  EXPECT_EQ(f0.retransmitted_bytes, 2 * c0.bytes_sent);
  EXPECT_EQ(f0.bytes_sent, 3 * c0.bytes_sent);  // original + 2 retransmits
  EXPECT_GT(f0.sim_seconds, c0.sim_seconds);    // backoff + recharges
  // The retry is local to rank 0's link; rank 1 pays nothing extra.
  EXPECT_EQ(faulty.worker_stats(1).bytes_sent, clean.worker_stats(1).bytes_sent);
  EXPECT_EQ(f0.num_ops, c0.num_ops);  // retries are not new ops
}

// Exceeding the retry budget escalates to a worker failure: the faulted
// rank dies with kUnavailable and survivors fail at their next rendezvous.
TEST(CommFaultTest, RetryExhaustionEscalatesToFailure) {
  Cluster cluster(3);
  cluster.set_collective_timeout_seconds(2.0);
  FaultPlan plan;
  plan.Corrupt(0, CollectiveOp::kAllReduceSum, 0, /*attempts=*/5);
  plan.set_retry_policy({/*max_attempts=*/3, /*backoff_seconds=*/1e-3,
                         /*backoff_multiplier=*/2.0});
  cluster.InstallFaultPlan(plan);
  const std::vector<Status> statuses = cluster.TryRun([](WorkerContext& ctx) {
    std::vector<double> data(8, 1.0);
    VERO_COMM_OK(ctx.AllReduceSum(data));
    VERO_COMM_OK(ctx.Barrier());
  });
  EXPECT_EQ(statuses[0].code(), StatusCode::kUnavailable);
  for (int r = 1; r < 3; ++r) {
    EXPECT_TRUE(statuses[r].code() == StatusCode::kUnavailable ||
                statuses[r].code() == StatusCode::kDeadlineExceeded)
        << statuses[r].ToString();
  }
  EXPECT_EQ(cluster.dead_ranks(), std::vector<int>{0});
  EXPECT_GE(cluster.worker_stats(0).num_retries, 3u);
}

// A worker that silently skips a collective (SPMD violation) must not hang
// its peers: their watchdog expires and surfaces kDeadlineExceeded (or
// kUnavailable once the first timeout breaks the group).
TEST(CommFaultTest, WatchdogCatchesSpmdViolation) {
  Cluster cluster(3);
  cluster.set_collective_timeout_seconds(0.5);
  const std::vector<Status> statuses = cluster.TryRun([](WorkerContext& ctx) {
    if (ctx.rank() == 0) return;  // Deserts the barrier below.
    VERO_COMM_OK(ctx.Barrier());
  });
  EXPECT_TRUE(statuses[0].ok());
  bool saw_deadline = false;
  for (int r = 1; r < 3; ++r) {
    EXPECT_TRUE(statuses[r].code() == StatusCode::kDeadlineExceeded ||
                statuses[r].code() == StatusCode::kUnavailable)
        << statuses[r].ToString();
    saw_deadline |= statuses[r].code() == StatusCode::kDeadlineExceeded;
  }
  EXPECT_TRUE(saw_deadline);
}

// Instrumentation reductions degrade to the local value once the group is
// broken instead of erroring, so measurement code needs no special casing.
TEST(CommFaultTest, InstrumentsDegradeAfterFailure) {
  Cluster cluster(2);
  cluster.set_collective_timeout_seconds(2.0);
  cluster.InstallFaultPlan(FaultPlan().Crash(1, CollectiveOp::kBarrier, 0));
  const std::vector<Status> statuses = cluster.TryRun([](WorkerContext& ctx) {
    (void)ctx.Barrier();  // Rank 1 dies here; rank 0's rendezvous breaks.
    const double m = ctx.InstrumentMax(3.0 + ctx.rank());
    EXPECT_DOUBLE_EQ(m, 3.0 + ctx.rank());  // Local value, no hang.
  });
  EXPECT_TRUE(statuses[0].ok()) << statuses[0].ToString();
}

// Satellite: an exception escaping a worker thread is rethrown by Run() on
// the caller thread instead of killing the process.
TEST(CommFaultTest, RunRethrowsWorkerException) {
  Cluster cluster(3);
  cluster.set_collective_timeout_seconds(2.0);
  EXPECT_THROW(cluster.Run([](WorkerContext& ctx) {
    if (ctx.rank() == 1) throw std::runtime_error("worker blew up");
    (void)ctx.Barrier();  // Fails fast once the thrower breaks the group.
  }),
               std::runtime_error);
}

// TryRun maps non-ClusterAbort exceptions to kInternal with the message.
TEST(CommFaultTest, TryRunMapsForeignExceptionsToInternal) {
  Cluster cluster(2);
  cluster.set_collective_timeout_seconds(2.0);
  const std::vector<Status> statuses = cluster.TryRun([](WorkerContext& ctx) {
    if (ctx.rank() == 0) throw std::runtime_error("oops");
  });
  EXPECT_EQ(statuses[0].code(), StatusCode::kInternal);
  EXPECT_NE(statuses[0].message().find("oops"), std::string::npos);
  EXPECT_TRUE(statuses[1].ok());
}

// Installing an *empty* FaultPlan must leave the byte and simulated-time
// accounting bit-identical to a cluster with no plan at all.
TEST(CommFaultTest, EmptyFaultPlanIsBitIdentical) {
  const auto body = [](WorkerContext& ctx) {
    std::vector<double> data(257, 1.0 + ctx.rank());
    ctx.AllReduceSum(data);
    std::vector<uint8_t> mine(13, static_cast<uint8_t>(ctx.rank()));
    std::vector<std::vector<uint8_t>> all;
    ctx.AllGather(mine, &all);
    std::vector<uint8_t> payload(99, 3);
    ctx.Broadcast(&payload, 1);
    ctx.Barrier();
  };
  Cluster plain(3);
  plain.Run(body);
  Cluster with_empty_plan(3);
  with_empty_plan.InstallFaultPlan(FaultPlan());
  with_empty_plan.Run(body);
  for (int r = 0; r < 3; ++r) {
    const CommStats& a = plain.worker_stats(r);
    const CommStats& b = with_empty_plan.worker_stats(r);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent);
    EXPECT_EQ(a.bytes_received, b.bytes_received);
    EXPECT_EQ(a.num_ops, b.num_ops);
    EXPECT_EQ(a.sim_seconds, b.sim_seconds);  // Exact, not approximate.
    EXPECT_EQ(a.retransmitted_bytes, 0u);
    EXPECT_EQ(b.retransmitted_bytes, 0u);
  }
}

}  // namespace
}  // namespace vero
