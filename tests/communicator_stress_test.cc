// Randomized stress tests of the cluster substrate: arbitrary buffer sizes
// (including empty and odd), varying worker counts, and long mixed op
// sequences, cross-checked against locally computed expectations.

#include <gtest/gtest.h>

#include "cluster/communicator.h"
#include "common/random.h"

namespace vero {
namespace {

class CommStressTest : public ::testing::TestWithParam<int> {};

TEST_P(CommStressTest, AllReduceRandomSizes) {
  const int w = GetParam();
  Cluster cluster(w);
  for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{17}, size_t{1000},
                   size_t{4097}}) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n);
      for (size_t i = 0; i < n; ++i) {
        data[i] = static_cast<double>(i % 7) * (ctx.rank() + 1);
      }
      ctx.AllReduceSum(data);
      const double rank_sum = w * (w + 1) / 2.0;
      for (size_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(data[i], static_cast<double>(i % 7) * rank_sum)
            << "n=" << n << " i=" << i;
      }
    });
  }
}

TEST_P(CommStressTest, ReduceScatterSliceSums) {
  const int w = GetParam();
  Cluster cluster(w);
  for (size_t n : {size_t{1}, size_t{7}, size_t{w * 3 + 1}, size_t{513}}) {
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n);
      for (size_t i = 0; i < n; ++i) data[i] = i + 0.25 * ctx.rank();
      ctx.ReduceScatterSum(data);
      const size_t begin = ctx.SliceBegin(n, ctx.rank());
      const size_t end = ctx.SliceEnd(n, ctx.rank());
      const double rank_quarter_sum = 0.25 * w * (w - 1) / 2.0;
      for (size_t i = begin; i < end; ++i) {
        ASSERT_DOUBLE_EQ(data[i], w * static_cast<double>(i) +
                                      rank_quarter_sum);
      }
    });
  }
}

TEST_P(CommStressTest, AllToAllVariableSizes) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    Rng rng(1000 + ctx.rank());
    for (int round = 0; round < 10; ++round) {
      std::vector<std::vector<uint8_t>> to(w);
      for (int dest = 0; dest < w; ++dest) {
        // Deterministic per (src, dest, round) so receivers can verify.
        const size_t len = (ctx.rank() * 31 + dest * 7 + round) % 20;
        to[dest].assign(len, static_cast<uint8_t>(ctx.rank() * 16 + dest));
      }
      std::vector<std::vector<uint8_t>> from;
      ctx.AllToAll(std::move(to), &from);
      for (int src = 0; src < w; ++src) {
        const size_t expect_len = (src * 31 + ctx.rank() * 7 + round) % 20;
        ASSERT_EQ(from[src].size(), expect_len);
        for (uint8_t b : from[src]) {
          ASSERT_EQ(b, static_cast<uint8_t>(src * 16 + ctx.rank()));
        }
      }
    }
  });
}

TEST_P(CommStressTest, EmptyBroadcastAndGather) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<uint8_t> empty;
    ctx.Broadcast(&empty, w - 1);
    EXPECT_TRUE(empty.empty());
    std::vector<std::vector<uint8_t>> all;
    ctx.Gather(empty, 0, &all);
    if (ctx.rank() == 0) {
      EXPECT_EQ(all.size(), static_cast<size_t>(w));
    }
  });
}

TEST_P(CommStressTest, LongMixedSequenceRemainsConsistent) {
  const int w = GetParam();
  Cluster cluster(w);
  cluster.Run([&](WorkerContext& ctx) {
    Rng rng(42);  // Same seed everywhere: identical op sequence (SPMD).
    for (int step = 0; step < 60; ++step) {
      switch (rng.Uniform(5)) {
        case 0: {
          std::vector<double> data(1 + rng.Uniform(64), 1.0);
          ctx.AllReduceSum(data);
          ASSERT_DOUBLE_EQ(data[0], static_cast<double>(w));
          break;
        }
        case 1: {
          std::vector<double> data(w + rng.Uniform(64), 2.0);
          ctx.ReduceScatterSum(data);
          const size_t b = ctx.SliceBegin(data.size(), ctx.rank());
          ASSERT_DOUBLE_EQ(data[b], 2.0 * w);
          break;
        }
        case 2: {
          const int root = static_cast<int>(rng.Uniform(w));
          std::vector<uint8_t> payload;
          if (ctx.rank() == root) payload.assign(5, 9);
          ctx.Broadcast(&payload, root);
          ASSERT_EQ(payload.size(), 5u);
          break;
        }
        case 3: {
          std::vector<uint8_t> mine = {static_cast<uint8_t>(ctx.rank())};
          std::vector<std::vector<uint8_t>> all;
          ctx.AllGather(mine, &all);
          ASSERT_EQ(all[w - 1][0], w - 1);
          break;
        }
        case 4: {
          const double m = ctx.InstrumentMax(ctx.rank() * 1.0);
          ASSERT_DOUBLE_EQ(m, w - 1.0);
          break;
        }
      }
    }
  });
  // Stats are internally consistent: sum of sent == sum of received for the
  // symmetric ops is not guaranteed op-by-op, but totals must be nonzero
  // and finite.
  const CommStats total = cluster.TotalStats();
  if (w > 1) {
    EXPECT_GT(total.num_ops, 0u);
    EXPECT_GT(total.sim_seconds, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, CommStressTest,
                         ::testing::Values(1, 2, 3, 5, 8));

}  // namespace
}  // namespace vero
