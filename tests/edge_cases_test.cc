// Degenerate-shape and failure-injection tests: more workers than features,
// more workers than instances, empty shards, constant features, corrupt
// wire payloads.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"
#include "sketch/quantile_summary.h"

namespace vero {
namespace {

Dataset TinyData(uint32_t n, uint32_t d, uint64_t seed = 61) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 1.0;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions TinyOptions() {
  DistTrainOptions options;
  options.params.num_trees = 3;
  options.params.num_layers = 4;
  options.params.num_candidate_splits = 8;
  return options;
}

TEST(EdgeCaseTest, MoreWorkersThanFeatures) {
  // Vertical quadrants: some workers own zero features and must still
  // participate in every collective.
  const Dataset data = TinyData(500, 3);
  for (Quadrant q : {Quadrant::kQD3, Quadrant::kQD4}) {
    Cluster cluster(6);
    const DistResult result =
        TrainDistributed(cluster, data, q, TinyOptions());
    EXPECT_EQ(result.model.num_trees(), 3u) << QuadrantToString(q);
    EXPECT_GT(EvaluateModel(result.model, data).value, 0.5);
  }
}

TEST(EdgeCaseTest, MoreWorkersThanInstances) {
  // Horizontal quadrants: some shards are empty.
  const Dataset data = TinyData(5, 4);
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD4}) {
    Cluster cluster(8);
    const DistResult result =
        TrainDistributed(cluster, data, q, TinyOptions());
    EXPECT_EQ(result.model.num_trees(), 3u) << QuadrantToString(q);
  }
}

TEST(EdgeCaseTest, SingleInstance) {
  const Dataset data = TinyData(1, 3);
  Trainer trainer(TinyOptions().params);
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  // One instance can never split (both children would need mass).
  for (size_t t = 0; t < model->num_trees(); ++t) {
    EXPECT_EQ(model->tree(t).NumLeaves(), 1u);
  }
}

TEST(EdgeCaseTest, AllFeaturesConstant) {
  CsrMatrix m;
  m.set_num_cols(3);
  std::vector<float> labels;
  for (int i = 0; i < 100; ++i) {
    m.StartRow();
    m.PushEntry(0, 1.0f);
    m.PushEntry(1, 2.0f);
    m.PushEntry(2, 3.0f);
    labels.push_back(static_cast<float>(i % 2));
  }
  const Dataset data(std::move(m), std::move(labels), Task::kBinary, 2);
  Trainer trainer(TinyOptions().params);
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  // No split possible: every tree is a single-leaf stump.
  EXPECT_EQ(model->tree(0).NumLeaves(), 1u);
}

TEST(EdgeCaseTest, PerfectlySeparableSingleFeature) {
  CsrMatrix m;
  m.set_num_cols(1);
  std::vector<float> labels;
  for (int i = 0; i < 200; ++i) {
    m.StartRow();
    m.PushEntry(0, static_cast<float>(i));
    labels.push_back(i < 100 ? 0.0f : 1.0f);
  }
  const Dataset data(std::move(m), std::move(labels), Task::kBinary, 2);
  GbdtParams params = TinyOptions().params;
  params.num_trees = 20;
  Trainer trainer(params);
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_GT(EvaluateModel(*model, data).value, 0.99);
}

TEST(EdgeCaseTest, EmptyRowsAreRoutedByDefaults) {
  // Instances with no features at all must follow default directions.
  CsrMatrix m;
  m.set_num_cols(2);
  std::vector<float> labels;
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    m.StartRow();
    if (i % 3 != 0) {  // Every third row is empty.
      const float v = static_cast<float>(rng.NextDouble());
      m.PushEntry(0, v);
      labels.push_back(v > 0.5f ? 1.0f : 0.0f);
    } else {
      labels.push_back(1.0f);
    }
  }
  const Dataset data(std::move(m), std::move(labels), Task::kBinary, 2);
  Trainer trainer(TinyOptions().params);
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  // Empty rows all share one leaf per tree, and the model is finite.
  const auto margins = model->PredictDatasetMargins(data);
  for (double v : margins) EXPECT_TRUE(std::isfinite(v));
}

TEST(EdgeCaseTest, DeepTreeOnTinyDataStopsGracefully) {
  const Dataset data = TinyData(20, 4);
  GbdtParams params = TinyOptions().params;
  params.num_layers = 12;  // Far deeper than 20 instances can fill.
  Trainer trainer(params);
  auto model = trainer.Train(data);
  ASSERT_TRUE(model.ok());
  EXPECT_LE(model->tree(0).NumLeaves(), 20u);
}

TEST(EdgeCaseTest, WideClusterQuadrantEquivalenceStillHolds) {
  const Dataset data = TinyData(64, 6, 67);
  const DistTrainOptions options = TinyOptions();
  GbdtModel reference;
  bool first = true;
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    Cluster cluster(7);  // Does not divide 64 or 6 evenly.
    const GbdtModel model =
        TrainDistributed(cluster, data, q, options).model;
    if (first) {
      reference = model;
      first = false;
      continue;
    }
    ASSERT_EQ(model.num_trees(), reference.num_trees());
    for (size_t t = 0; t < model.num_trees(); ++t) {
      const Tree& a = reference.tree(t);
      const Tree& b = model.tree(t);
      for (NodeId id = 0; id < static_cast<NodeId>(a.max_nodes()); ++id) {
        ASSERT_EQ(a.Exists(id), b.Exists(id)) << QuadrantToString(q);
        if (a.Exists(id) &&
            a.node(id).state == TreeNode::State::kInternal) {
          EXPECT_EQ(a.node(id).feature, b.node(id).feature)
              << QuadrantToString(q) << " tree " << t << " node " << id;
        }
      }
    }
  }
}

// ---- Failure injection: corrupt / truncated wire payloads ------------------

TEST(FailureInjectionTest, TruncatedSummaryPayloadsReturnErrors) {
  QuantileSummary summary = QuantileSummary::FromValues({1, 2, 3, 4, 5});
  ByteWriter writer;
  summary.SerializeTo(&writer);
  const std::vector<uint8_t>& bytes = writer.data();
  // Every strict prefix must fail cleanly (no crash, no partial success).
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    ByteReader reader(bytes.data(), cut);
    QuantileSummary out;
    EXPECT_FALSE(QuantileSummary::Deserialize(&reader, &out).ok())
        << "cut at " << cut;
  }
}

TEST(FailureInjectionTest, TruncatedSplitPayloadsReturnErrors) {
  SplitCandidate split;
  split.valid = true;
  split.feature = 3;
  split.left_stats = {{1.0, 2.0}};
  split.right_stats = {{3.0, 4.0}};
  ByteWriter writer;
  split.SerializeTo(&writer);
  for (size_t cut = 0; cut < writer.data().size(); ++cut) {
    ByteReader reader(writer.data().data(), cut);
    SplitCandidate out;
    EXPECT_FALSE(SplitCandidate::Deserialize(&reader, &out).ok());
  }
}

TEST(FailureInjectionTest, RandomGarbageNeverCrashesModelDeserialize) {
  Rng rng(71);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(rng.Uniform(256));
    for (auto& b : garbage) b = static_cast<uint8_t>(rng.Next());
    ByteReader reader(garbage);
    GbdtModel model;
    // Must return (usually an error); absolutely must not crash or hang.
    (void)GbdtModel::Deserialize(&reader, &model);
  }
}

TEST(FailureInjectionTest, BitFlippedTreePayloadFailsOrStaysConsistent) {
  Tree tree(3, 2);
  tree.SetSplit(0, 1, 0.5f, 2, true, 1.5);
  tree.SetLeaf(1, {1.0f, -1.0f});
  tree.SetLeaf(2, {-1.0f, 1.0f});
  ByteWriter writer;
  tree.SerializeTo(&writer);
  Rng rng(73);
  // Few dozen trials: a flipped depth byte can legitimately allocate a
  // 2^24-node tree, so keep the loop bounded.
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<uint8_t> bytes = writer.data();
    bytes[rng.Uniform(bytes.size())] ^= static_cast<uint8_t>(
        1u << rng.Uniform(8));
    ByteReader reader(bytes);
    Tree out;
    const Status status = Tree::Deserialize(&reader, &out);
    if (status.ok()) {
      // If it parsed, the structure must still be self-consistent enough to
      // route an instance without crashing.
      const std::vector<FeatureId> f = {1};
      const std::vector<float> v = {0.2f};
      if (out.Exists(0)) {
        (void)out.Route({f.data(), 1}, {v.data(), 1});
      }
    }
  }
}

}  // namespace
}  // namespace vero
