#include "partition/column_group.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

ColumnGroupBlock MakeBlock(InstanceId offset,
                           const std::vector<std::vector<std::pair<uint32_t, BinId>>>& rows) {
  ColumnGroupBlock block;
  block.row_offset = offset;
  for (const auto& row : rows) {
    for (const auto& [f, b] : row) {
      block.features.push_back(f);
      block.bins.push_back(b);
    }
    block.row_ptr.push_back(static_cast<uint32_t>(block.features.size()));
  }
  return block;
}

TEST(ColumnGroupTest, SingleBlockAccess) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}, {2, 3}}, {}, {{1, 4}}}));
  EXPECT_EQ(group.num_instances(), 3u);
  EXPECT_EQ(group.num_blocks(), 1u);
  EXPECT_EQ(group.num_entries(), 3u);
  auto f0 = group.RowFeatures(0);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[1], 2u);
  EXPECT_EQ(group.RowBins(0)[1], 3);
  EXPECT_EQ(group.RowFeatures(1).size(), 0u);
  EXPECT_EQ(group.RowFeatures(2)[0], 1u);
}

TEST(ColumnGroupTest, TwoPhaseIndexAcrossBlocks) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}}, {{1, 2}}}));
  group.AppendBlock(MakeBlock(2, {{{2, 3}}}));
  group.AppendBlock(MakeBlock(3, {{{3, 4}}, {{4, 5}}}));
  EXPECT_EQ(group.num_instances(), 5u);
  EXPECT_EQ(group.num_blocks(), 3u);
  // Phase 1 must find the right block for each global instance id.
  EXPECT_EQ(group.RowFeatures(1)[0], 1u);
  EXPECT_EQ(group.RowFeatures(2)[0], 2u);
  EXPECT_EQ(group.RowFeatures(3)[0], 3u);
  EXPECT_EQ(group.RowFeatures(4)[0], 4u);
}

TEST(ColumnGroupTest, FindBin) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{1, 7}, {5, 9}}}));
  ASSERT_TRUE(group.FindBin(0, 5).has_value());
  EXPECT_EQ(*group.FindBin(0, 5), 9);
  EXPECT_FALSE(group.FindBin(0, 3).has_value());
}

TEST(ColumnGroupTest, MergeBlocksPreservesEveryRow) {
  Rng rng(3);
  ColumnGroup group;
  std::vector<std::vector<std::pair<uint32_t, BinId>>> all_rows;
  InstanceId offset = 0;
  for (int b = 0; b < 8; ++b) {
    std::vector<std::vector<std::pair<uint32_t, BinId>>> rows;
    const int nrows = 1 + static_cast<int>(rng.Uniform(5));
    for (int r = 0; r < nrows; ++r) {
      std::vector<std::pair<uint32_t, BinId>> row;
      uint32_t f = 0;
      const int len = static_cast<int>(rng.Uniform(4));
      for (int k = 0; k < len; ++k) {
        f += 1 + static_cast<uint32_t>(rng.Uniform(3));
        row.emplace_back(f, static_cast<BinId>(rng.Uniform(16)));
      }
      rows.push_back(row);
      all_rows.push_back(row);
    }
    group.AppendBlock(MakeBlock(offset, rows));
    offset += nrows;
  }
  ASSERT_EQ(group.num_blocks(), 8u);
  group.MergeBlocks(3);
  EXPECT_LE(group.num_blocks(), 3u);
  ASSERT_EQ(group.num_instances(), all_rows.size());
  for (InstanceId i = 0; i < all_rows.size(); ++i) {
    auto features = group.RowFeatures(i);
    auto bins = group.RowBins(i);
    ASSERT_EQ(features.size(), all_rows[i].size()) << "row " << i;
    for (size_t k = 0; k < features.size(); ++k) {
      EXPECT_EQ(features[k], all_rows[i][k].first);
      EXPECT_EQ(bins[k], all_rows[i][k].second);
    }
  }
}

TEST(ColumnGroupTest, MergeToSingleBlock) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}}}));
  group.AppendBlock(MakeBlock(1, {{{1, 2}}}));
  group.MergeBlocks(1);
  EXPECT_EQ(group.num_blocks(), 1u);
  EXPECT_EQ(group.RowFeatures(1)[0], 1u);
}

TEST(ColumnGroupTest, MergeNoopWhenFewBlocks) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}}}));
  group.MergeBlocks(5);
  EXPECT_EQ(group.num_blocks(), 1u);
}

TEST(ColumnGroupTest, MemoryBytesPositive) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}}}));
  EXPECT_GT(group.MemoryBytes(), 0u);
}

TEST(ColumnGroupDeathTest, NonContiguousBlocksDie) {
  ColumnGroup group;
  group.AppendBlock(MakeBlock(0, {{{0, 1}}}));
  EXPECT_DEATH(group.AppendBlock(MakeBlock(5, {{{0, 1}}})), "contiguous");
}

}  // namespace
}  // namespace vero
