// Straggler mitigation: bounded-staleness aggregation and speculative
// re-execution. Covers the deterministic classifier, the bounded collectives'
// exact accounting (staleness.* / speculation.* locked to the network cost
// model), a property-based staleness-bound/mass-conservation sweep, and the
// end-to-end fault-grid contract: strict mode stays bit-identical to seed
// under any delay plan, speculative mode reproduces the strict model exactly,
// and bounded mode beats strict wall time within an asserted loss tolerance.

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <mutex>
#include <random>
#include <string>
#include <vector>

#include "cluster/communicator.h"
#include "cluster/staleness.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

using obs::MetricsSnapshot;
using obs::RunObserver;

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 4, uint32_t layers = 4) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

MitigationOptions Bounded(double deadline = 0.01, uint32_t bound = 2,
                          uint32_t max_stale = 1) {
  MitigationOptions opts;
  opts.mode = MitigationMode::kBoundedStaleness;
  opts.deadline_seconds = deadline;
  opts.staleness_bound = bound;
  opts.max_stale_ranks = max_stale;
  return opts;
}

MitigationOptions Speculative(double threshold = 0.01) {
  MitigationOptions opts;
  opts.mode = MitigationMode::kSpeculative;
  opts.speculation_threshold_seconds = threshold;
  return opts;
}

// ---------------------------------------------------------------------------
// ClassifyStragglers: the pure, replicated decision procedure.
// ---------------------------------------------------------------------------

TEST(ClassifyStragglersTest, StrictModeNeverMitigates) {
  std::vector<double> delays = {0.0, 5.0, 0.0, 9.0};
  std::vector<uint32_t> streaks = {0, 0, 0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  ClassifyStragglers(MitigationOptions{}, delays, streaks, &klass, &backup);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(klass[r], RankClass::kOnTime);
    EXPECT_EQ(backup[r], -1);
  }
}

TEST(ClassifyStragglersTest, BoundedDefersWorstLateRankOnly) {
  std::vector<double> delays = {0.0, 0.3, 0.0, 0.8};
  std::vector<uint32_t> streaks = {0, 0, 0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  ClassifyStragglers(Bounded(/*deadline=*/0.05), delays, streaks, &klass,
                     &backup);
  // Budget is max_stale_ranks = 1: the worst straggler is deferred, the
  // second-worst falls back to strict behavior.
  EXPECT_EQ(klass[3], RankClass::kDeferred);
  EXPECT_EQ(klass[1], RankClass::kOnTime);
  EXPECT_EQ(klass[0], RankClass::kOnTime);
  EXPECT_EQ(klass[2], RankClass::kOnTime);
}

TEST(ClassifyStragglersTest, BudgetNeverExceedsWorldMinusOne) {
  std::vector<double> delays = {1.0, 1.0, 1.0, 1.0};
  std::vector<uint32_t> streaks = {0, 0, 0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  ClassifyStragglers(Bounded(0.05, 2, /*max_stale=*/8), delays, streaks,
                     &klass, &backup);
  int deferred = 0;
  for (RankClass k : klass) deferred += k == RankClass::kDeferred ? 1 : 0;
  EXPECT_EQ(deferred, 3);  // At least one rank must stay on time.
  EXPECT_EQ(klass[3], RankClass::kOnTime);  // Ties break toward low ranks.
}

TEST(ClassifyStragglersTest, StreakAtBoundForcesSync) {
  std::vector<double> delays = {0.0, 0.7, 0.0, 0.0};
  std::vector<uint32_t> streaks = {0, 2, 0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  ClassifyStragglers(Bounded(0.05, /*bound=*/2), delays, streaks, &klass,
                     &backup);
  EXPECT_EQ(klass[1], RankClass::kForced);
  // A forced sync consumes no budget: another late rank may still defer.
  std::vector<double> two_late = {0.0, 0.7, 0.4, 0.0};
  ClassifyStragglers(Bounded(0.05, 2), two_late, streaks, &klass, &backup);
  EXPECT_EQ(klass[1], RankClass::kForced);
  EXPECT_EQ(klass[2], RankClass::kDeferred);
}

TEST(ClassifyStragglersTest, SpeculativeAssignsDistinctLowestBackups) {
  std::vector<double> delays = {0.0, 0.7, 0.0, 0.9};
  std::vector<uint32_t> streaks = {0, 0, 0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  MitigationOptions opts = Speculative(0.05);
  opts.max_stale_ranks = 2;
  ClassifyStragglers(opts, delays, streaks, &klass, &backup);
  EXPECT_EQ(klass[1], RankClass::kSpeculated);
  EXPECT_EQ(klass[3], RankClass::kSpeculated);
  // Backups are the lowest on-time ranks, assigned in rank order, distinct.
  EXPECT_EQ(backup[1], 0);
  EXPECT_EQ(backup[3], 2);
  EXPECT_EQ(backup[0], -1);
  EXPECT_EQ(backup[2], -1);
}

TEST(ClassifyStragglersTest, SpeculationWithoutBackupFallsBackToStrict) {
  // Two workers, one late: the only on-time rank backs it up. But if every
  // candidate would leave no on-time backup, the rank reverts to strict.
  std::vector<double> delays = {0.9, 0.8};
  std::vector<uint32_t> streaks = {0, 0};
  std::vector<RankClass> klass;
  std::vector<int> backup;
  MitigationOptions opts = Speculative(0.05);
  opts.max_stale_ranks = 2;
  ClassifyStragglers(opts, delays, streaks, &klass, &backup);
  // Budget w-1 = 1: only the worst (rank 0) is speculated, rank 1 serves.
  EXPECT_EQ(klass[0], RankClass::kSpeculated);
  EXPECT_EQ(backup[0], 1);
  EXPECT_EQ(klass[1], RankClass::kOnTime);
}

// ---------------------------------------------------------------------------
// Bounded collective semantics + exact accounting against the cost model.
// ---------------------------------------------------------------------------

TEST(BoundedCollectiveTest, StrictModeDelegatesBitIdentically) {
  const size_t n = 32;
  std::vector<double> strict_result, bounded_result;
  CommStats strict_stats, bounded_stats;
  for (int use_bounded = 0; use_bounded < 2; ++use_bounded) {
    Cluster cluster(4);
    cluster.InstallFaultPlan(
        FaultPlan().Delay(1, CollectiveOp::kAllReduceSum, 0, 0.5));
    cluster.Run([&](WorkerContext& ctx) {
      std::vector<double> data(n, static_cast<double>(ctx.rank() + 1));
      MitigationOutcome outcome;
      if (use_bounded) {
        VERO_COMM_OK(
            ctx.AllReduceBoundedSum(data, MitigationOptions{}, &outcome));
        EXPECT_FALSE(outcome.self_deferred);
        EXPECT_EQ(outcome.contributed,
                  std::vector<uint8_t>(4, 1));
      } else {
        VERO_COMM_OK(ctx.AllReduceSum(data));
      }
      if (ctx.rank() == 0) {
        if (use_bounded) {
          bounded_result = data;
        } else {
          strict_result = data;
        }
      }
    });
    (use_bounded ? bounded_stats : strict_stats) = cluster.TotalStats();
  }
  EXPECT_EQ(strict_result, bounded_result);
  EXPECT_EQ(strict_stats.bytes_sent, bounded_stats.bytes_sent);
  EXPECT_EQ(strict_stats.num_ops, bounded_stats.num_ops);
  EXPECT_DOUBLE_EQ(strict_stats.sim_seconds, bounded_stats.sim_seconds);
  EXPECT_DOUBLE_EQ(strict_stats.fault_delay_seconds,
                   bounded_stats.fault_delay_seconds);
  EXPECT_EQ(bounded_stats.deferred_contributions, 0u);
  EXPECT_DOUBLE_EQ(bounded_stats.absorbed_delay_seconds, 0.0);
}

TEST(BoundedCollectiveTest, BoundedAccountingLockedToCostModel) {
  const int w = 4;
  const size_t n = 16;
  const double kDelay = 0.5;
  const double kDeadline = 0.05;
  RunObserver observer;
  Cluster cluster(w);
  cluster.AttachObserver(&observer);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(2, CollectiveOp::kAllReduceSum, 0, kDelay));
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<double> data(n, static_cast<double>(ctx.rank() + 1));
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllReduceBoundedSum(data, Bounded(kDeadline), &outcome));
    EXPECT_EQ(outcome.deferred_ranks, 1);
    EXPECT_EQ(outcome.self_deferred, ctx.rank() == 2);
    EXPECT_EQ(outcome.contributed[2], 0);
    // Rank 2's payload (all 3.0) is excluded identically on every rank.
    for (double v : data) EXPECT_DOUBLE_EQ(v, 1.0 + 2.0 + 4.0);
  });

  const uint64_t wire = 2 * (n * sizeof(double)) * (w - 1) / w;  // 192
  const double op_s = cluster.network_model().OpSeconds(wire, wire);
  for (int r = 0; r < w; ++r) {
    const CommStats& s = cluster.worker_stats(r);
    // The late payload still crossed the wire: volume is charged as strict.
    EXPECT_EQ(s.bytes_sent, wire) << "rank " << r;
    EXPECT_EQ(s.bytes_received, wire) << "rank " << r;
    if (r == 2) {
      // Deferred: injected delay absorbed off the critical path.
      EXPECT_DOUBLE_EQ(s.sim_seconds, op_s);
      EXPECT_DOUBLE_EQ(s.absorbed_delay_seconds, kDelay);
      EXPECT_DOUBLE_EQ(s.fault_delay_seconds, 0.0);
      EXPECT_EQ(s.deferred_contributions, 1u);
      EXPECT_DOUBLE_EQ(s.deadline_wait_seconds, 0.0);
    } else {
      // On-time ranks pay exactly the deadline on top of the op.
      EXPECT_DOUBLE_EQ(s.sim_seconds, op_s + kDeadline) << "rank " << r;
      EXPECT_DOUBLE_EQ(s.deadline_wait_seconds, kDeadline) << "rank " << r;
      EXPECT_DOUBLE_EQ(s.absorbed_delay_seconds, 0.0) << "rank " << r;
      EXPECT_EQ(s.deferred_contributions, 0u) << "rank " << r;
    }
    EXPECT_EQ(s.speculative_bytes, 0u) << "rank " << r;
  }

  const MetricsSnapshot metrics = observer.metrics().Merged();
  EXPECT_EQ(metrics.CounterValue("staleness.deferred_contributions"), 1u);
  EXPECT_EQ(metrics.CounterValue("staleness.forced_syncs"), 0u);
  const MetricsSnapshot::Entry* deferred_s =
      metrics.Find("staleness.deferred_seconds");
  ASSERT_NE(deferred_s, nullptr);
  EXPECT_EQ(deferred_s->count, 1u);
  EXPECT_DOUBLE_EQ(deferred_s->sum, kDelay);
  const MetricsSnapshot::Entry* mass = metrics.Find("staleness.deferred_mass");
  ASSERT_NE(mass, nullptr);
  EXPECT_DOUBLE_EQ(mass->sum, 3.0 * n);  // Rank 2's dropped (g,h) mass.
  const MetricsSnapshot::Entry* wait =
      metrics.Find("staleness.deadline_wait_seconds");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->count, 3u);
  EXPECT_DOUBLE_EQ(wait->sum, 3 * kDeadline);
  // Exact accounting: per-op counters still decompose CommStats totals.
  EXPECT_EQ(metrics.CounterValue("comm.AllReduceSum.bytes_sent"),
            cluster.TotalStats().bytes_sent);
}

TEST(BoundedCollectiveTest, SpeculativeAccountingLockedToCostModel) {
  const int w = 4;
  const size_t n = 256;
  const double kDelay = 0.5;
  RunObserver observer;
  Cluster cluster(w);
  cluster.AttachObserver(&observer);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(3, CollectiveOp::kAllReduceSum, 0, kDelay));
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<double> data(n, static_cast<double>(ctx.rank() + 1));
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllReduceBoundedSum(data, Speculative(), &outcome));
    EXPECT_EQ(outcome.speculated_ranks, 1);
    EXPECT_EQ(outcome.self_speculated, ctx.rank() == 3);
    // Speculation keeps the data exact: every rank contributes.
    EXPECT_EQ(outcome.contributed, std::vector<uint8_t>(4, 1));
    for (double v : data) EXPECT_DOUBLE_EQ(v, 1.0 + 2.0 + 3.0 + 4.0);
  });

  const uint64_t wire = 2 * (n * sizeof(double)) * (w - 1) / w;  // 3072
  const double op_s = cluster.network_model().OpSeconds(wire, wire);
  // Rank 0 (lowest on-time) re-served rank 3's share: double volume/time.
  const CommStats& backup = cluster.worker_stats(0);
  EXPECT_EQ(backup.bytes_sent, 2 * wire);
  EXPECT_EQ(backup.speculative_bytes, wire);
  EXPECT_DOUBLE_EQ(backup.speculative_seconds, op_s);
  EXPECT_DOUBLE_EQ(backup.sim_seconds, 2 * op_s);
  // The speculated rank's delay is absorbed; no deadline charges anywhere.
  const CommStats& slow = cluster.worker_stats(3);
  EXPECT_DOUBLE_EQ(slow.absorbed_delay_seconds, kDelay);
  EXPECT_DOUBLE_EQ(slow.fault_delay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(slow.sim_seconds, op_s);
  EXPECT_EQ(cluster.worker_stats(1).bytes_sent, wire);
  EXPECT_DOUBLE_EQ(cluster.TotalStats().deadline_wait_seconds, 0.0);

  const MetricsSnapshot metrics = observer.metrics().Merged();
  EXPECT_EQ(metrics.CounterValue("speculation.launched"), 1u);
  EXPECT_EQ(metrics.CounterValue("speculation.wasted_bytes"), wire);
  const MetricsSnapshot::Entry* wasted_s =
      metrics.Find("speculation.wasted_seconds");
  ASSERT_NE(wasted_s, nullptr);
  EXPECT_EQ(wasted_s->count, 1u);
  EXPECT_DOUBLE_EQ(wasted_s->sum, op_s);
  const MetricsSnapshot::Entry* absorbed =
      metrics.Find("speculation.absorbed_seconds");
  ASSERT_NE(absorbed, nullptr);
  EXPECT_DOUBLE_EQ(absorbed->sum, kDelay);
  // Exact accounting: the duplicated volume is mirrored into the per-op
  // counters, so they still decompose CommStats totals to the byte.
  EXPECT_EQ(metrics.CounterValue("comm.AllReduceSum.bytes_sent"),
            cluster.TotalStats().bytes_sent);
  EXPECT_EQ(metrics.CounterValue("comm.AllReduceSum.ops"),
            cluster.TotalStats().num_ops);
}

TEST(BoundedCollectiveTest, ForcedSyncAtStalenessBound) {
  RunObserver observer;
  Cluster cluster(4);
  cluster.AttachObserver(&observer);
  cluster.InstallFaultPlan(FaultPlan()
                               .Delay(1, CollectiveOp::kAllReduceSum, 0, 0.5)
                               .Delay(1, CollectiveOp::kAllReduceSum, 1, 0.5));
  cluster.Run([&](WorkerContext& ctx) {
    const MitigationOptions opts = Bounded(0.01, /*bound=*/1);
    std::vector<double> data(8, static_cast<double>(ctx.rank() + 1));
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllReduceBoundedSum(data, opts, &outcome));
    EXPECT_EQ(outcome.self_deferred, ctx.rank() == 1);
    for (double v : data) EXPECT_DOUBLE_EQ(v, 1.0 + 3.0 + 4.0);
    // Second late call: rank 1's streak hit the bound, so it is forced to
    // contribute (full strict price) instead of going stale again.
    std::vector<double> data2(8, static_cast<double>(ctx.rank() + 1));
    VERO_COMM_OK(ctx.AllReduceBoundedSum(data2, opts, &outcome));
    EXPECT_FALSE(outcome.self_deferred);
    EXPECT_EQ(outcome.self_forced, ctx.rank() == 1);
    for (double v : data2) EXPECT_DOUBLE_EQ(v, 1.0 + 2.0 + 3.0 + 4.0);
  });
  const CommStats& slow = cluster.worker_stats(1);
  EXPECT_DOUBLE_EQ(slow.absorbed_delay_seconds, 0.5);  // Call 1 absorbed.
  EXPECT_DOUBLE_EQ(slow.fault_delay_seconds, 0.5);     // Call 2 paid in full.
  EXPECT_EQ(observer.metrics().Merged().CounterValue("staleness.forced_syncs"),
            1u);
}

TEST(BoundedCollectiveTest, AllGatherBoundedDropsDeferredSlotEverywhere) {
  Cluster cluster(4);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(2, CollectiveOp::kAllGather, 0, 0.5));
  cluster.Run([&](WorkerContext& ctx) {
    const std::vector<uint8_t> mine(
        static_cast<size_t>(ctx.rank() + 1) * 10,
        static_cast<uint8_t>(ctx.rank()));
    std::vector<std::vector<uint8_t>> all;
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllGatherBounded(mine, &all, Bounded(0.01), &outcome));
    EXPECT_EQ(outcome.contributed[2], 0);
    // The deferred slot is empty on EVERY rank, including rank 2 itself.
    EXPECT_TRUE(all[2].empty());
    for (int r = 0; r < 4; ++r) {
      if (r == 2) continue;
      EXPECT_EQ(all[r].size(), static_cast<size_t>(r + 1) * 10);
    }
  });
  // Bytes are still charged as strict: rank 2's 30-byte payload crossed the
  // wire to its 3 peers before being dropped.
  EXPECT_EQ(cluster.worker_stats(2).bytes_sent, 30u * 3);
  EXPECT_EQ(cluster.worker_stats(0).bytes_received, 20u + 30 + 40);
}

TEST(BoundedCollectiveTest, AllToAllBoundedDropsDeferredSenderEverywhere) {
  Cluster cluster(3);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(0, CollectiveOp::kAllToAll, 0, 0.5));
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<std::vector<uint8_t>> to_each(3);
    for (int r = 0; r < 3; ++r) {
      to_each[r].assign(4, static_cast<uint8_t>(10 * ctx.rank() + r));
    }
    std::vector<std::vector<uint8_t>> from_each;
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllToAllBounded(std::move(to_each), &from_each,
                                     Bounded(0.01), &outcome));
    EXPECT_EQ(outcome.contributed[0], 0);
    // Everything sent BY rank 0 is dropped — its self-slice included — so
    // skip-by-mask receivers agree on every rank.
    EXPECT_TRUE(from_each[0].empty());
    EXPECT_EQ(from_each[1].size(), 4u);
    EXPECT_EQ(from_each[2].size(), 4u);
    EXPECT_EQ(from_each[1][0], static_cast<uint8_t>(10 + ctx.rank()));
  });
  // Strict volume: each rank sends its two 4-byte peer slices.
  EXPECT_EQ(cluster.worker_stats(0).bytes_sent, 8u);
  EXPECT_EQ(cluster.worker_stats(1).bytes_received, 8u);
}

TEST(BoundedCollectiveTest, SpeculativeAllGatherChargesBackupReexecution) {
  Cluster cluster(4);
  cluster.InstallFaultPlan(
      FaultPlan().Delay(3, CollectiveOp::kAllGather, 0, 0.7));
  cluster.Run([&](WorkerContext& ctx) {
    const std::vector<uint8_t> mine(100, static_cast<uint8_t>(ctx.rank()));
    std::vector<std::vector<uint8_t>> all;
    MitigationOutcome outcome;
    VERO_COMM_OK(ctx.AllGatherBounded(mine, &all, Speculative(), &outcome));
    // Exact delivery: every slot filled.
    for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r].size(), 100u);
  });
  // Backup rank 0 re-sent rank 3's 100-byte payload to w-1 peers.
  EXPECT_EQ(cluster.worker_stats(0).speculative_bytes, 300u);
  EXPECT_EQ(cluster.worker_stats(0).bytes_sent, 300u + 300u);
  EXPECT_DOUBLE_EQ(cluster.worker_stats(3).absorbed_delay_seconds, 0.7);
}

// ---------------------------------------------------------------------------
// Property-based sweep: staleness bound and mass conservation under random
// seeded delay schedules.
// ---------------------------------------------------------------------------

TEST(StalenessPropertyTest, BoundHeldAndMassConservedUnderRandomDelays) {
  const int w = 4;
  const int kCalls = 24;
  const size_t n = 8;
  const uint32_t kBound = 2;
  for (uint64_t seed : {7ull, 41ull, 1234ull}) {
    // Seeded random delay schedule: each call delays each rank with
    // probability ~1/3 by 0.1..1.0 simulated seconds.
    std::mt19937_64 rng(seed);
    std::uniform_real_distribution<double> delay_dist(0.1, 1.0);
    FaultPlan plan;
    for (int call = 0; call < kCalls; ++call) {
      for (int r = 0; r < w; ++r) {
        if (rng() % 3 == 0) {
          plan.Delay(r, CollectiveOp::kAllReduceSum,
                     static_cast<uint64_t>(call), delay_dist(rng));
        }
      }
    }
    Cluster cluster(w);
    cluster.InstallFaultPlan(plan);

    // Per-call, per-rank records (each worker writes only its own slots).
    std::vector<std::vector<MitigationOutcome>> outcomes(
        kCalls, std::vector<MitigationOutcome>(w));
    std::vector<std::vector<double>> results(kCalls);
    std::mutex results_mu;

    const MitigationOptions opts = Bounded(0.05, kBound);
    cluster.Run([&](WorkerContext& ctx) {
      const int rank = ctx.rank();
      uint32_t streak = 0;
      for (int call = 0; call < kCalls; ++call) {
        std::vector<double> data(n);
        for (size_t i = 0; i < n; ++i) {
          // Deterministic, rank- and call-unique values.
          data[i] = (rank + 1) * 100.0 + call + static_cast<double>(i) * 0.5;
        }
        MitigationOutcome outcome;
        VERO_COMM_OK(ctx.AllReduceBoundedSum(data, opts, &outcome));
        outcomes[call][rank] = outcome;
        if (rank == 0) {
          std::lock_guard<std::mutex> lock(results_mu);
          results[call] = data;
        }
        // Property 1: no contribution is ever deferred more than
        // staleness_bound consecutive mitigated calls.
        if (outcome.self_deferred) {
          ++streak;
          EXPECT_LE(streak, kBound) << "seed " << seed << " call " << call;
        } else {
          streak = 0;
        }
      }
    });

    auto value = [n](int rank, int call, size_t i) {
      return (rank + 1) * 100.0 + call + static_cast<double>(i) * 0.5;
    };
    int total_deferrals = 0;
    for (int call = 0; call < kCalls; ++call) {
      // All ranks observed the identical plan.
      for (int r = 1; r < w; ++r) {
        EXPECT_EQ(outcomes[call][r].contributed,
                  outcomes[call][0].contributed);
      }
      const std::vector<uint8_t>& mask = outcomes[call][0].contributed;
      // Property 2: the result is exactly the rank-ascending sum of the
      // contributing ranks (bit-exact — same order as the serial reducer).
      for (size_t i = 0; i < n; ++i) {
        double expect = 0.0;
        for (int r = 0; r < w; ++r) {
          if (mask[r]) expect += value(r, call, i);
        }
        EXPECT_DOUBLE_EQ(results[call][i], expect)
            << "seed " << seed << " call " << call << " elem " << i;
      }
      // Property 3: mass conservation — aggregated mass plus the deferred
      // ranks' held-back mass equals the full-cohort mass.
      double result_mass = 0.0, deferred_mass = 0.0, total_mass = 0.0;
      for (size_t i = 0; i < n; ++i) {
        result_mass += results[call][i];
        for (int r = 0; r < w; ++r) {
          total_mass += value(r, call, i);
          if (!mask[r]) deferred_mass += value(r, call, i);
        }
      }
      EXPECT_NEAR(result_mass + deferred_mass, total_mass,
                  1e-9 * total_mass);
      for (int r = 0; r < w; ++r) {
        total_deferrals += mask[r] ? 0 : 1;
      }
    }
    // The schedule is dense enough that mitigation actually engaged.
    EXPECT_GT(total_deferrals, 0) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// End-to-end fault grid: strict bit-identity, speculative exactness, bounded
// tolerance + speedup, across the quadrants.
// ---------------------------------------------------------------------------

struct GridCell {
  FaultPhase phase;
  int rank;
  double delay;
};

TEST(StragglerGridTest, StrictModeBitIdenticalToSeedUnderDelayGrid) {
  const Dataset train = MakeData(600, 20, 11);
  const DistTrainOptions options = SmallOptions();

  Cluster clean(4);
  const DistResult base = TrainDistributed(clean, train, Quadrant::kQD1,
                                           options);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  const std::string base_text = ModelToText(base.model);

  const GridCell kGrid[] = {
      {FaultPhase::kTrain, 1, 0.25},
      {FaultPhase::kTrain, 1, 1.0},
      {FaultPhase::kTrain, 2, 1.0},
      {FaultPhase::kSetup, 1, 1.0},
  };
  for (const GridCell& cell : kGrid) {
    Cluster faulted(4);
    faulted.InstallFaultPlan(FaultPlan()
                                 .Delay(cell.rank, CollectiveOp::kAny, 0,
                                        cell.delay, cell.phase)
                                 .Delay(cell.rank, CollectiveOp::kAny, 3,
                                        cell.delay, cell.phase));
    const DistResult result =
        TrainDistributed(faulted, train, Quadrant::kQD1, options);
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    // Strict mode: delays cost time but the model must stay bit-identical,
    // and no mitigation accounting may appear.
    EXPECT_EQ(ModelToText(result.model), base_text)
        << "phase " << FaultPhaseToString(cell.phase) << " rank "
        << cell.rank << " delay " << cell.delay;
    const CommStats total = faulted.TotalStats();
    EXPECT_EQ(total.deferred_contributions, 0u);
    EXPECT_DOUBLE_EQ(total.absorbed_delay_seconds, 0.0);
    EXPECT_DOUBLE_EQ(total.deadline_wait_seconds, 0.0);
    EXPECT_EQ(total.speculative_bytes, 0u);
    EXPECT_GE(total.fault_delay_seconds, cell.delay);
  }
}

TEST(StragglerGridTest, StrictModeBitIdenticalAcrossQuadrants) {
  const Dataset train = MakeData(500, 16, 13);
  const DistTrainOptions options = SmallOptions();
  const Quadrant kQuadrants[] = {Quadrant::kQD1, Quadrant::kQD2,
                                 Quadrant::kQD3, Quadrant::kQD4,
                                 Quadrant::kFeatureParallel};
  for (Quadrant q : kQuadrants) {
    Cluster clean(3);
    const DistResult base = TrainDistributed(clean, train, q, options);
    ASSERT_TRUE(base.status.ok()) << QuadrantToString(q);

    Cluster faulted(3);
    faulted.InstallFaultPlan(FaultPlan().Delay(
        1, CollectiveOp::kAny, 5, 0.8, FaultPhase::kTrain));
    const DistResult result = TrainDistributed(faulted, train, q, options);
    ASSERT_TRUE(result.status.ok()) << QuadrantToString(q);
    EXPECT_EQ(ModelToText(result.model), ModelToText(base.model))
        << QuadrantToString(q);
    EXPECT_GT(result.TrainSeconds(), base.TrainSeconds())
        << QuadrantToString(q);
  }
}

// One slow rank dominating the QD1 histogram aggregations: both mitigation
// modes must beat strict time; speculation must reproduce the model exactly;
// bounded staleness must converge within tolerance.
TEST(StragglerGridTest, MitigationBeatsStrictUnderDominantStraggler) {
  const Dataset train = MakeData(600, 20, 17);
  const DistTrainOptions options = SmallOptions();
  // Tree 0's histogram aggregations sit at kTrain kAllReduceSum occurrences
  // 1, 3, 5 (occ 0 is the gradient all-reduce, even occs are node counts)
  // with 4 layers; repeat for tree 1 at 7, 9, 11.
  const auto make_plan = [] {
    FaultPlan plan;
    for (uint64_t occ : {1, 3, 5, 7, 9, 11}) {
      plan.Delay(1, CollectiveOp::kAllReduceSum, occ, 0.8, FaultPhase::kTrain);
    }
    return plan;
  };

  Cluster strict_cluster(4);
  strict_cluster.InstallFaultPlan(make_plan());
  const DistResult strict =
      TrainDistributed(strict_cluster, train, Quadrant::kQD1, options);
  ASSERT_TRUE(strict.status.ok()) << strict.status.ToString();
  ASSERT_FALSE(strict.curve.empty());

  // Speculative: bit-identical model, faster, waste surfaced.
  DistTrainOptions spec_options = options;
  spec_options.params.straggler_mitigation = StragglerMitigation::kSpeculative;
  spec_options.params.speculation_threshold_seconds = 0.01;
  Cluster spec_cluster(4);
  spec_cluster.InstallFaultPlan(make_plan());
  const DistResult spec = TrainDistributed(spec_cluster, train,
                                           Quadrant::kQD1, spec_options);
  ASSERT_TRUE(spec.status.ok()) << spec.status.ToString();
  EXPECT_EQ(ModelToText(spec.model), ModelToText(strict.model));
  EXPECT_LT(spec.TrainSeconds(), strict.TrainSeconds());
  const CommStats spec_total = spec_cluster.TotalStats();
  EXPECT_EQ(spec_total.speculative_bytes > 0, true);
  EXPECT_EQ(spec.wasted_bytes, spec_total.speculative_bytes);
  EXPECT_DOUBLE_EQ(spec.wasted_seconds, spec_total.speculative_seconds);

  // Bounded staleness: faster, mitigation engaged, loss within tolerance.
  DistTrainOptions bounded_options = options;
  bounded_options.params.straggler_mitigation =
      StragglerMitigation::kBoundedStaleness;
  bounded_options.params.staleness_deadline_seconds = 0.01;
  Cluster bounded_cluster(4);
  bounded_cluster.InstallFaultPlan(make_plan());
  const DistResult bounded = TrainDistributed(bounded_cluster, train,
                                              Quadrant::kQD1, bounded_options);
  ASSERT_TRUE(bounded.status.ok()) << bounded.status.ToString();
  EXPECT_LT(bounded.TrainSeconds(), strict.TrainSeconds());
  EXPECT_GT(bounded_cluster.TotalStats().deferred_contributions, 0u);
  ASSERT_FALSE(bounded.curve.empty());
  const double strict_loss = strict.curve.back().train_loss;
  const double bounded_loss = bounded.curve.back().train_loss;
  // Dropping one rank's histogram for a layer perturbs split choice but must
  // not derail convergence on this workload.
  EXPECT_NEAR(bounded_loss, strict_loss, 0.1 * std::abs(strict_loss) + 0.01);
}

// Bounded staleness engages (and converges) on every quadrant's exchange
// pattern, not just QD1's all-reduce.
TEST(StragglerGridTest, BoundedModeEngagesOnEveryQuadrant) {
  const Dataset train = MakeData(500, 16, 19);
  struct QuadCell {
    Quadrant quadrant;
    CollectiveOp op;
  };
  // The op each quadrant's mitigated split exchange reports: QD2 exchanges
  // feature slices via all-to-all; QD3 (Yggdrasil), feature-parallel, and
  // the mitigated QD4 flow exchange local bests via all-gather.
  const QuadCell kCells[] = {
      {Quadrant::kQD2, CollectiveOp::kAllToAll},
      {Quadrant::kQD3, CollectiveOp::kAllGather},
      {Quadrant::kQD4, CollectiveOp::kAllGather},
      {Quadrant::kFeatureParallel, CollectiveOp::kAllGather},
  };
  for (const QuadCell& cell : kCells) {
    Cluster clean(3);
    DistTrainOptions options = SmallOptions();
    const DistResult base =
        TrainDistributed(clean, train, cell.quadrant, options);
    ASSERT_TRUE(base.status.ok()) << QuadrantToString(cell.quadrant);

    options.params.straggler_mitigation =
        StragglerMitigation::kBoundedStaleness;
    options.params.staleness_deadline_seconds = 0.01;
    Cluster faulted(3);
    faulted.InstallFaultPlan(FaultPlan()
                                 .Delay(1, cell.op, 0, 0.8, FaultPhase::kTrain)
                                 .Delay(1, cell.op, 4, 0.8,
                                        FaultPhase::kTrain));
    const DistResult result =
        TrainDistributed(faulted, train, cell.quadrant, options);
    ASSERT_TRUE(result.status.ok()) << QuadrantToString(cell.quadrant);
    EXPECT_GT(faulted.TotalStats().deferred_contributions, 0u)
        << QuadrantToString(cell.quadrant);
    ASSERT_FALSE(result.curve.empty());
    const double base_loss = base.curve.back().train_loss;
    EXPECT_NEAR(result.curve.back().train_loss, base_loss,
                0.1 * std::abs(base_loss) + 0.01)
        << QuadrantToString(cell.quadrant);
  }
}

TEST(StragglerGridTest, EndToEndStalenessBoundForcesSync) {
  const Dataset train = MakeData(500, 16, 23);
  DistTrainOptions options = SmallOptions();
  options.params.straggler_mitigation =
      StragglerMitigation::kBoundedStaleness;
  options.params.staleness_deadline_seconds = 0.01;
  options.params.staleness_bound = 1;

  RunObserver observer;
  Cluster cluster(4);
  cluster.AttachObserver(&observer);
  // Two consecutive late histogram aggregations on rank 1: the second must
  // be a forced sync under staleness_bound = 1.
  cluster.InstallFaultPlan(
      FaultPlan()
          .Delay(1, CollectiveOp::kAllReduceSum, 1, 0.8, FaultPhase::kTrain)
          .Delay(1, CollectiveOp::kAllReduceSum, 3, 0.8, FaultPhase::kTrain));
  const DistResult result =
      TrainDistributed(cluster, train, Quadrant::kQD1, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  const MetricsSnapshot metrics = observer.metrics().Merged();
  EXPECT_EQ(metrics.CounterValue("staleness.deferred_contributions"), 1u);
  EXPECT_EQ(metrics.CounterValue("staleness.forced_syncs"), 1u);
  // The forced call paid its delay on the critical path.
  EXPECT_DOUBLE_EQ(cluster.worker_stats(1).fault_delay_seconds, 0.8);
  EXPECT_DOUBLE_EQ(cluster.worker_stats(1).absorbed_delay_seconds, 0.8);
}

// ---------------------------------------------------------------------------
// Parameter plumbing.
// ---------------------------------------------------------------------------

TEST(StragglerParamsTest, ValidationRejectsBadKnobs) {
  GbdtParams params;
  EXPECT_TRUE(params.Validate().ok());
  params.staleness_deadline_seconds = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GbdtParams{};
  params.speculation_threshold_seconds = -1.0;
  EXPECT_FALSE(params.Validate().ok());
  params = GbdtParams{};
  params.staleness_bound = 0;
  EXPECT_FALSE(params.Validate().ok());
  params = GbdtParams{};
  params.staleness_max_stale_ranks = 0;
  EXPECT_FALSE(params.Validate().ok());
}

TEST(StragglerParamsTest, MitigationFromParamsMapsEveryKnob) {
  GbdtParams params;
  params.straggler_mitigation = StragglerMitigation::kBoundedStaleness;
  params.staleness_deadline_seconds = 0.2;
  params.staleness_bound = 5;
  params.staleness_max_stale_ranks = 2;
  params.speculation_threshold_seconds = 0.3;
  const MitigationOptions opts = MitigationFromParams(params);
  EXPECT_EQ(opts.mode, MitigationMode::kBoundedStaleness);
  EXPECT_DOUBLE_EQ(opts.deadline_seconds, 0.2);
  EXPECT_EQ(opts.staleness_bound, 5u);
  EXPECT_EQ(opts.max_stale_ranks, 2u);
  EXPECT_DOUBLE_EQ(opts.speculation_threshold_seconds, 0.3);
  params.straggler_mitigation = StragglerMitigation::kSpeculative;
  EXPECT_EQ(MitigationFromParams(params).mode, MitigationMode::kSpeculative);
  params.straggler_mitigation = StragglerMitigation::kStrict;
  EXPECT_FALSE(MitigationFromParams(params).enabled());
}

}  // namespace
}  // namespace vero
