#include "core/histogram.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

TEST(HistogramTest, ShapeAndClear) {
  Histogram h(3, 4, 2);
  EXPECT_EQ(h.num_features(), 3u);
  EXPECT_EQ(h.num_bins(), 4u);
  EXPECT_EQ(h.num_dims(), 2u);
  EXPECT_EQ(h.raw_size(), 3u * 4 * 2 * 2);
  GradPair g[2] = {{1.0, 2.0}, {3.0, 4.0}};
  h.Add(1, 2, g);
  EXPECT_DOUBLE_EQ(h.at(1, 2, 0).g, 1.0);
  EXPECT_DOUBLE_EQ(h.at(1, 2, 1).h, 4.0);
  h.Clear();
  EXPECT_DOUBLE_EQ(h.at(1, 2, 0).g, 0.0);
}

TEST(HistogramTest, MemoryBytesMatchesPaperFormula) {
  // Sizehist = 2 x D x q x C x 8 bytes (§3.1.1).
  const uint32_t d = 100, q = 20, c = 9;
  Histogram h(d, q, c);
  EXPECT_EQ(h.MemoryBytes(), 2ull * d * q * c * 8);
}

TEST(HistogramTest, AddAccumulates) {
  Histogram h(1, 2, 1);
  GradPair g1{1.0, 0.5}, g2{2.0, 0.25};
  h.Add(0, 1, &g1);
  h.Add(0, 1, &g2);
  EXPECT_DOUBLE_EQ(h.at(0, 1, 0).g, 3.0);
  EXPECT_DOUBLE_EQ(h.at(0, 1, 0).h, 0.75);
}

TEST(HistogramTest, AddHistogramElementwise) {
  Histogram a(2, 2, 1), b(2, 2, 1);
  GradPair g{1.0, 1.0};
  a.Add(0, 0, &g);
  b.Add(0, 0, &g);
  b.Add(1, 1, &g);
  a.AddHistogram(b);
  EXPECT_DOUBLE_EQ(a.at(0, 0, 0).g, 2.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1, 0).g, 1.0);
}

TEST(HistogramTest, FeatureTotal) {
  Histogram h(2, 3, 2);
  GradPair g[2] = {{1.0, 2.0}, {10.0, 20.0}};
  h.Add(0, 0, g);
  h.Add(0, 2, g);
  h.Add(1, 1, g);
  const GradStats t0 = h.FeatureTotal(0);
  EXPECT_DOUBLE_EQ(t0[0].g, 2.0);
  EXPECT_DOUBLE_EQ(t0[1].h, 40.0);
  const GradStats t1 = h.FeatureTotal(1);
  EXPECT_DOUBLE_EQ(t1[0].g, 1.0);
}

// The histogram subtraction invariant of §2.1.2: hist(parent) =
// hist(left) + hist(right), so right = parent - left exactly.
TEST(HistogramTest, SubtractionInvariant) {
  Rng rng(42);
  const uint32_t d = 5, q = 8, c = 3;
  Histogram parent(d, q, c), left(d, q, c), right_direct(d, q, c);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t f = rng.Uniform(d);
    const uint32_t b = rng.Uniform(q);
    std::vector<GradPair> g(c);
    for (auto& p : g) p = {rng.NextGaussian(), rng.NextDouble()};
    parent.Add(f, b, g.data());
    if (rng.Bernoulli(0.4)) {
      left.Add(f, b, g.data());
    } else {
      right_direct.Add(f, b, g.data());
    }
  }
  Histogram right_sub(d, q, c);
  right_sub.SetToDifference(parent, left);
  for (uint32_t f = 0; f < d; ++f) {
    for (uint32_t b = 0; b < q; ++b) {
      for (uint32_t k = 0; k < c; ++k) {
        EXPECT_NEAR(right_sub.at(f, b, k).g, right_direct.at(f, b, k).g,
                    1e-12);
        EXPECT_NEAR(right_sub.at(f, b, k).h, right_direct.at(f, b, k).h,
                    1e-12);
      }
    }
  }
}

TEST(HistogramTest, RawDataIsFlatDoubleView) {
  Histogram h(1, 1, 1);
  GradPair g{3.0, 7.0};
  h.Add(0, 0, &g);
  ASSERT_EQ(h.raw_size(), 2u);
  EXPECT_DOUBLE_EQ(h.raw_data()[0], 3.0);
  EXPECT_DOUBLE_EQ(h.raw_data()[1], 7.0);
}

TEST(HistogramPoolTest, AcquireGetRelease) {
  HistogramPool pool;
  Histogram* h = pool.Acquire(3, 2, 4, 1);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(pool.Get(3), h);
  EXPECT_EQ(pool.Get(5), nullptr);
  EXPECT_EQ(pool.CurrentBytes(), h->MemoryBytes());
  pool.Release(3);
  EXPECT_EQ(pool.Get(3), nullptr);
  EXPECT_EQ(pool.CurrentBytes(), 0u);
}

TEST(HistogramPoolTest, PeakTracksHighWaterMark) {
  HistogramPool pool;
  pool.Acquire(0, 10, 10, 1);
  pool.Acquire(1, 10, 10, 1);
  const uint64_t two = pool.CurrentBytes();
  pool.Release(0);
  pool.Release(1);
  EXPECT_EQ(pool.PeakBytes(), two);
  EXPECT_EQ(pool.CurrentBytes(), 0u);
  pool.ResetPeak();
  EXPECT_EQ(pool.PeakBytes(), 0u);
}

TEST(HistogramPoolTest, ReleasedBuffersAreRecycledCleared) {
  HistogramPool pool;
  Histogram* h = pool.Acquire(0, 2, 2, 1);
  GradPair g{5.0, 5.0};
  h->Add(0, 0, &g);
  pool.Release(0);
  Histogram* h2 = pool.Acquire(1, 2, 2, 1);
  EXPECT_DOUBLE_EQ(h2->at(0, 0, 0).g, 0.0);  // Recycled buffer is cleared.
}

TEST(HistogramPoolTest, ReleaseUnknownNodeIsNoop) {
  HistogramPool pool;
  pool.Release(42);
  EXPECT_EQ(pool.CurrentBytes(), 0u);
}

TEST(HistogramPoolDeathTest, DoubleAcquireDies) {
  HistogramPool pool;
  pool.Acquire(0, 1, 1, 1);
  EXPECT_DEATH(pool.Acquire(0, 1, 1, 1), "already has a histogram");
}

}  // namespace
}  // namespace vero
