#include "core/node_indexer.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

TEST(RowPartitionTest, InitPlacesAllOnRoot) {
  RowPartition p;
  p.Init(10, 4);
  ASSERT_TRUE(p.Has(0));
  EXPECT_EQ(p.Count(0), 10u);
  auto inst = p.Instances(0);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(inst[i], i);
  EXPECT_FALSE(p.Has(1));
}

TEST(RowPartitionTest, SplitMovesByBitmapStably) {
  RowPartition p;
  p.Init(6, 3);
  Bitmap go_left(6);
  go_left.Set(0);
  go_left.Set(2);
  go_left.Set(5);
  p.Split(0, go_left);
  EXPECT_FALSE(p.Has(0));
  ASSERT_TRUE(p.Has(1));
  ASSERT_TRUE(p.Has(2));
  EXPECT_EQ(p.Count(1), 3u);
  EXPECT_EQ(p.Count(2), 3u);
  auto left = p.Instances(1);
  auto right = p.Instances(2);
  EXPECT_EQ(left[0], 0u);
  EXPECT_EQ(left[1], 2u);
  EXPECT_EQ(left[2], 5u);
  EXPECT_EQ(right[0], 1u);
  EXPECT_EQ(right[1], 3u);
  EXPECT_EQ(right[2], 4u);
}

TEST(RowPartitionTest, SplitAllLeft) {
  RowPartition p;
  p.Init(4, 3);
  Bitmap all(4);
  for (size_t i = 0; i < 4; ++i) all.Set(i);
  p.Split(0, all);
  EXPECT_EQ(p.Count(1), 4u);
  EXPECT_EQ(p.Count(2), 0u);
}

TEST(RowPartitionTest, NestedSplitsPreserveMembership) {
  Rng rng(5);
  RowPartition p;
  const uint32_t n = 1000;
  p.Init(n, 5);
  std::vector<NodeId> frontier = {0};
  // Split three levels randomly; verify the leaves partition [0, n).
  for (int depth = 0; depth < 3; ++depth) {
    std::vector<NodeId> next;
    for (NodeId node : frontier) {
      const uint32_t count = p.Count(node);
      Bitmap go_left(count);
      for (uint32_t j = 0; j < count; ++j) {
        go_left.Assign(j, rng.Bernoulli(0.3));
      }
      p.Split(node, go_left);
      next.push_back(LeftChild(node));
      next.push_back(RightChild(node));
    }
    frontier = std::move(next);
  }
  std::vector<bool> seen(n, false);
  uint32_t total = 0;
  for (NodeId node : frontier) {
    ASSERT_TRUE(p.Has(node));
    for (InstanceId i : p.Instances(node)) {
      EXPECT_FALSE(seen[i]) << "instance " << i << " appears twice";
      seen[i] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, n);
}

TEST(RowPartitionTest, SplitKeepsRelativeOrderOnBothSides) {
  Rng rng(9);
  RowPartition p;
  const uint32_t n = 500;
  p.Init(n, 3);
  Bitmap go_left(n);
  for (uint32_t j = 0; j < n; ++j) go_left.Assign(j, rng.Bernoulli(0.5));
  p.Split(0, go_left);
  for (NodeId child : {1, 2}) {
    auto inst = p.Instances(child);
    EXPECT_TRUE(std::is_sorted(inst.begin(), inst.end()));
  }
}

TEST(RowPartitionDeathTest, WrongBitmapSizeDies) {
  RowPartition p;
  p.Init(5, 3);
  Bitmap wrong(3);
  EXPECT_DEATH(p.Split(0, wrong), "Check failed");
}

TEST(RowPartitionDeathTest, SplitMissingNodeDies) {
  RowPartition p;
  p.Init(5, 3);
  Bitmap b(5);
  EXPECT_DEATH(p.Split(1, b), "Check failed");
}

TEST(InstanceToNodeTest, InitAndSetGet) {
  InstanceToNode idx;
  idx.Init(5);
  for (InstanceId i = 0; i < 5; ++i) EXPECT_EQ(idx.Get(i), 0);
  idx.Set(2, 7);
  EXPECT_EQ(idx.Get(2), 7);
  EXPECT_EQ(idx.Count(0), 4u);
  EXPECT_EQ(idx.Count(7), 1u);
}

TEST(MemoryBytesTest, NonZeroAfterInit) {
  RowPartition p;
  p.Init(100, 4);
  EXPECT_GT(p.MemoryBytes(), 0u);
  InstanceToNode idx;
  idx.Init(100);
  EXPECT_GT(idx.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace vero
