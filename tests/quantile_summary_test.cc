#include "sketch/quantile_summary.h"

#include <algorithm>
#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"
#include "common/serialize.h"

namespace vero {
namespace {

TEST(QuantileSummaryTest, ExactFromValues) {
  QuantileSummary s = QuantileSummary::FromValues({3.0f, 1.0f, 2.0f, 1.0f});
  EXPECT_EQ(s.num_entries(), 3u);  // Distinct values 1, 2, 3.
  EXPECT_DOUBLE_EQ(s.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(s.min_value(), 1.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 3.0);
  ASSERT_TRUE(s.CheckInvariants().ok());
  // value 1 has rmin 0, rmax 2 (two copies); value 2 rmin 2 rmax 3.
  EXPECT_DOUBLE_EQ(s.entries()[0].rmin, 0.0);
  EXPECT_DOUBLE_EQ(s.entries()[0].rmax, 2.0);
  EXPECT_DOUBLE_EQ(s.entries()[1].rmin, 2.0);
  EXPECT_DOUBLE_EQ(s.entries()[1].rmax, 3.0);
}

TEST(QuantileSummaryTest, EmptySummary) {
  QuantileSummary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.ProposeSplits(10).size(), 0u);
  EXPECT_TRUE(s.Merge(QuantileSummary()).empty());
}

TEST(QuantileSummaryTest, WeightedValues) {
  QuantileSummary s =
      QuantileSummary::FromWeightedValues({{1.0f, 3.0f}, {2.0f, 1.0f}});
  EXPECT_DOUBLE_EQ(s.total_weight(), 4.0);
  EXPECT_DOUBLE_EQ(s.entries()[0].w, 3.0);
  ASSERT_TRUE(s.CheckInvariants().ok());
}

TEST(QuantileSummaryTest, MergeOfExactSummariesIsExact) {
  QuantileSummary a = QuantileSummary::FromValues({1, 3, 5, 7});
  QuantileSummary b = QuantileSummary::FromValues({2, 3, 6});
  QuantileSummary m = a.Merge(b);
  ASSERT_TRUE(m.CheckInvariants().ok());
  EXPECT_DOUBLE_EQ(m.total_weight(), 7.0);
  // Merged exact summaries keep exact ranks: rmin(x) == #values < x.
  const std::vector<float> all = {1, 2, 3, 3, 5, 6, 7};
  for (const SummaryEntry& e : m.entries()) {
    const double below = std::count_if(all.begin(), all.end(), [&](float v) {
      return v < e.value;
    });
    const double below_or_eq = std::count_if(
        all.begin(), all.end(), [&](float v) { return v <= e.value; });
    EXPECT_DOUBLE_EQ(e.rmin, below) << "value " << e.value;
    EXPECT_DOUBLE_EQ(e.rmax, below_or_eq) << "value " << e.value;
  }
}

TEST(QuantileSummaryTest, MergeWithEmpty) {
  QuantileSummary a = QuantileSummary::FromValues({1, 2});
  EXPECT_EQ(a.Merge(QuantileSummary()).num_entries(), 2u);
  EXPECT_EQ(QuantileSummary().Merge(a).num_entries(), 2u);
}

TEST(QuantileSummaryTest, PruneKeepsExtremesAndBounds) {
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) values.push_back(static_cast<float>(i));
  QuantileSummary s = QuantileSummary::FromValues(values).Prune(20);
  ASSERT_TRUE(s.CheckInvariants().ok());
  EXPECT_LE(s.num_entries(), 20u);
  EXPECT_DOUBLE_EQ(s.min_value(), 0.0);
  EXPECT_DOUBLE_EQ(s.max_value(), 999.0);
}

TEST(QuantileSummaryTest, QueryOnExactSummaryIsExact) {
  std::vector<float> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<float>(i));
  QuantileSummary s = QuantileSummary::FromValues(values);
  EXPECT_NEAR(s.Query(50), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.Query(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Query(1000), 100.0);
}

TEST(QuantileSummaryTest, ProposeSplitsCoversMaxAndIsSorted) {
  std::vector<float> values;
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    values.push_back(static_cast<float>(rng.NextDouble()));
  }
  const float max_v = *std::max_element(values.begin(), values.end());
  QuantileSummary s = QuantileSummary::FromValues(values);
  const std::vector<float> splits = s.ProposeSplits(20);
  ASSERT_FALSE(splits.empty());
  EXPECT_LE(splits.size(), 20u);
  EXPECT_TRUE(std::is_sorted(splits.begin(), splits.end()));
  EXPECT_EQ(splits.back(), max_v);
}

TEST(QuantileSummaryTest, ProposeSplitsOnConstantFeature) {
  QuantileSummary s = QuantileSummary::FromValues({2.5f, 2.5f, 2.5f});
  const std::vector<float> splits = s.ProposeSplits(20);
  ASSERT_EQ(splits.size(), 1u);
  EXPECT_EQ(splits[0], 2.5f);
}

TEST(QuantileSummaryTest, SerializeRoundTrip) {
  QuantileSummary s = QuantileSummary::FromValues({1, 2, 2, 3, 10});
  ByteWriter w;
  s.SerializeTo(&w);
  ByteReader r(w.data());
  QuantileSummary t;
  ASSERT_TRUE(QuantileSummary::Deserialize(&r, &t).ok());
  EXPECT_EQ(t.num_entries(), s.num_entries());
  EXPECT_DOUBLE_EQ(t.total_weight(), s.total_weight());
  EXPECT_DOUBLE_EQ(t.Query(2.0), s.Query(2.0));
}

// Property: pruned sketch rank error stays within total_weight/(b-1) plus
// merge slack, across distributions and sketch budgets.
class SketchErrorTest
    : public ::testing::TestWithParam<std::tuple<int, size_t>> {};

TEST_P(SketchErrorTest, QuantileErrorBounded) {
  const auto [distribution, max_entries] = GetParam();
  Rng rng(distribution * 100 + max_entries);
  const int n = 20000;
  std::vector<float> values;
  values.reserve(n);
  for (int i = 0; i < n; ++i) {
    double v = 0;
    switch (distribution) {
      case 0:
        v = rng.NextDouble();
        break;
      case 1:
        v = rng.NextGaussian();
        break;
      case 2:
        v = std::exp(3 * rng.NextDouble());
        break;
      case 3:
        v = rng.Uniform(50);  // Heavy ties.
        break;
    }
    values.push_back(static_cast<float>(v));
  }
  QuantileSketch sketch(max_entries, 1024);
  for (float v : values) sketch.Add(v);
  const QuantileSummary& summary =
      const_cast<QuantileSketch&>(sketch).Finalize();
  ASSERT_TRUE(summary.CheckInvariants().ok());
  EXPECT_DOUBLE_EQ(summary.total_weight(), n);

  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  // Allow a few buffer-merge rounds' worth of slack on top of 1/(b-1).
  const double tolerance = 8.0 * n / static_cast<double>(max_entries - 1);
  for (double q = 0.1; q < 1.0; q += 0.1) {
    const double rank = q * n;
    const float estimate = static_cast<float>(summary.Query(rank));
    // True rank range of the estimate in the sorted data.
    const auto lo = std::lower_bound(sorted.begin(), sorted.end(), estimate);
    const auto hi = std::upper_bound(sorted.begin(), sorted.end(), estimate);
    const double rank_lo = lo - sorted.begin();
    const double rank_hi = hi - sorted.begin();
    const double error = std::max(
        0.0, std::max(rank_lo - rank, rank - rank_hi));
    EXPECT_LE(error, tolerance)
        << "distribution " << distribution << " q " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndBudgets, SketchErrorTest,
    ::testing::Combine(::testing::Values(0, 1, 2, 3),
                       ::testing::Values(size_t{64}, size_t{256},
                                         size_t{1024})));

TEST(QuantileSketchTest, MergedShardsMatchSingleStream) {
  // The distributed pipeline builds per-worker sketches and merges them;
  // the merged result must approximate the same quantiles.
  Rng rng(77);
  std::vector<float> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(static_cast<float>(rng.NextGaussian()));
  }
  QuantileSketch shard_a(256), shard_b(256), shard_c(256);
  for (size_t i = 0; i < values.size(); ++i) {
    (i % 3 == 0 ? shard_a : i % 3 == 1 ? shard_b : shard_c).Add(values[i]);
  }
  QuantileSummary merged = shard_a.Finalize()
                               .Merge(shard_b.Finalize())
                               .Merge(shard_c.Finalize())
                               .Prune(256);
  ASSERT_TRUE(merged.CheckInvariants().ok());
  EXPECT_DOUBLE_EQ(merged.total_weight(), 10000.0);

  QuantileSketch single(256);
  for (float v : values) single.Add(v);
  const QuantileSummary& single_summary = single.Finalize();
  for (double q = 0.1; q < 1.0; q += 0.2) {
    EXPECT_NEAR(merged.Query(q * 10000), single_summary.Query(q * 10000),
                0.25)
        << "quantile " << q;
  }
}

}  // namespace
}  // namespace vero
