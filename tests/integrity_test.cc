// End-to-end integrity: silent corruption injected AFTER the transport CRC
// (and NaN poison injected into compute buffers) must produce a demonstrably
// wrong model when auditing is off, and must be detected — with the correct
// rank blamed — when auditing is on. Detected violations heal through a
// targeted layer recompute when possible, escalating to the existing
// checkpoint-rollback machinery otherwise, and every path is charged to the
// run's waste accounting. Also covers the guarantee that enabling the
// auditor on a CLEAN run is bit-identical and byte-identical to integrity
// off: audit packets ride the instrumentation channel, not the data plane.

#include <cmath>
#include <cstdint>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/model_io.h"
#include "data/synthetic.h"
#include "integrity/auditor.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 6, uint32_t layers = 4) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

DistTrainOptions WithIntegrity(DistTrainOptions options, IntegrityLevel level) {
  options.params.integrity = level;
  return options;
}

// ---------------------------------------------------------------------------
// Clean runs: the auditor must be a pure observer.
// ---------------------------------------------------------------------------

class QuadrantIntegrityTest : public ::testing::TestWithParam<Quadrant> {};

// On a fault-free run, integrity=checksum and integrity=full produce a model
// bit-identical to integrity=off AND move exactly the same number of data
// bytes: the audit exchange rides the instrumentation rendezvous, never the
// (costed, fault-injectable) data plane.
TEST_P(QuadrantIntegrityTest, CleanRunIsBitIdenticalAcrossLevels) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(900, 24, 311);
  const DistTrainOptions base = SmallOptions();

  Cluster off_cluster(3);
  const DistResult off = TrainDistributed(
      off_cluster, data, quadrant, WithIntegrity(base, IntegrityLevel::kOff));
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();
  const std::string off_text = ModelToText(off.model);
  EXPECT_EQ(off.integrity.checks, 0u);

  for (const IntegrityLevel level :
       {IntegrityLevel::kChecksum, IntegrityLevel::kFull}) {
    Cluster cluster(3);
    const DistResult result =
        TrainDistributed(cluster, data, quadrant, WithIntegrity(base, level));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_EQ(ModelToText(result.model), off_text)
        << IntegrityLevelToString(level);
    EXPECT_EQ(result.train_bytes_sent, off.train_bytes_sent)
        << IntegrityLevelToString(level);
    EXPECT_GT(result.integrity.checks, 0u);
    EXPECT_EQ(result.integrity.violations, 0u);
    EXPECT_EQ(result.integrity.recomputes, 0u);
    EXPECT_EQ(result.integrity.escalations, 0u);
    EXPECT_EQ(result.integrity_rollbacks, 0);
    EXPECT_EQ(result.integrity.last_blamed_rank, -1);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(cluster.worker_stats(r).bytes_sent,
                off_cluster.worker_stats(r).bytes_sent)
          << "rank " << r;
      EXPECT_EQ(cluster.worker_stats(r).sim_seconds,
                off_cluster.worker_stats(r).sim_seconds)
          << "rank " << r;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQuadrants, QuadrantIntegrityTest,
                         ::testing::Values(Quadrant::kQD1, Quadrant::kQD2,
                                           Quadrant::kQD3, Quadrant::kQD4));

// ---------------------------------------------------------------------------
// Silent transport corruption: escapes at off, caught + blamed + healed on.
// ---------------------------------------------------------------------------

// QD1 aggregates the layer histograms with one AllReduceSum per layer, and
// every worker then evaluates splits from its own replica of the aggregate.
// Flipping a bit of rank 2's replica after the CRC passed makes rank 2
// decide differently from the others — in a real deployment that is a wrong
// model or a desynchronized cluster. At checksum (and full) the replicated
// digest of the aggregate disagrees 1-vs-2, rank 2 is blamed, one layer
// recompute heals the run, and the final model is bit-identical to clean.
TEST(SilentCorruptTest, Qd1AllReduceDetectedAndHealed) {
  const Dataset data = MakeData(900, 24, 313);
  const DistTrainOptions base = SmallOptions();

  Cluster clean(3);
  const DistResult ref = TrainDistributed(clean, data, Quadrant::kQD1, base);
  ASSERT_TRUE(ref.status.ok());
  const std::string ref_text = ModelToText(ref.model);

  for (const IntegrityLevel level :
       {IntegrityLevel::kChecksum, IntegrityLevel::kFull}) {
    Cluster cluster(3);
    // Occurrence 1 of the kTrain AllReduceSum stream = tree 0's root-layer
    // histogram aggregate (occurrence 0 is the gradient all-reduce).
    cluster.InstallFaultPlan(FaultPlan().SilentCorrupt(
        2, CollectiveOp::kAllReduceSum, /*occurrence=*/1, /*seed=*/77,
        FaultPhase::kTrain));
    const DistResult result = TrainDistributed(cluster, data, Quadrant::kQD1,
                                               WithIntegrity(base, level));
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_GE(result.integrity.violations, 1u) << IntegrityLevelToString(level);
    EXPECT_EQ(result.integrity.recomputes, 1u) << IntegrityLevelToString(level);
    EXPECT_EQ(result.integrity.escalations, 0u);
    EXPECT_EQ(result.integrity.last_blamed_rank, 2);
    EXPECT_GT(result.integrity.wasted_seconds, 0.0);
    EXPECT_GT(result.wasted_seconds, 0.0);  // Folded into run goodput.
    EXPECT_EQ(ModelToText(result.model), ref_text)
        << IntegrityLevelToString(level);
  }
}

// QD2 exchanges per-destination histogram slices with AllToAll, and the
// merged decision stays replicated (every rank merges the same gathered
// per-slice bests) — so at integrity=off a corrupted slice silently yields
// a wrong but internally consistent model: the escape the paper's checksum
// argument misses. On, the pairwise sent/recv digest audit convicts the
// RECEIVER whose copy diverged from what the sender handed to the
// transport, and the layer recompute restores the clean model.
TEST(SilentCorruptTest, Qd2AllToAllEscapesOffBlamesReceiverOn) {
  const Dataset data = MakeData(900, 24, 317);
  const DistTrainOptions base = SmallOptions();

  Cluster clean(3);
  const DistResult ref = TrainDistributed(clean, data, Quadrant::kQD2, base);
  ASSERT_TRUE(ref.status.ok());
  const std::string ref_text = ModelToText(ref.model);

  // Rank 2's feature slice holds the trees' dominant split, so corrupting
  // the slices rank 2 RECEIVES visibly changes the decided model.
  const auto corrupted_plan = [] {
    return FaultPlan().SilentCorrupt(2, CollectiveOp::kAllToAll,
                                     /*occurrence=*/0, /*seed=*/5,
                                     FaultPhase::kTrain);
  };

  Cluster off_cluster(3);
  off_cluster.InstallFaultPlan(corrupted_plan());
  const DistResult off = TrainDistributed(
      off_cluster, data, Quadrant::kQD2, WithIntegrity(base, IntegrityLevel::kOff));
  ASSERT_TRUE(off.status.ok()) << off.status.ToString();
  EXPECT_EQ(off.integrity.checks, 0u);
  EXPECT_NE(ModelToText(off.model), ref_text);

  Cluster cluster(3);
  cluster.InstallFaultPlan(corrupted_plan());
  const DistResult result = TrainDistributed(
      cluster, data, Quadrant::kQD2, WithIntegrity(base, IntegrityLevel::kFull));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.integrity.violations, 1u);
  EXPECT_EQ(result.integrity.recomputes, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 2);
  EXPECT_EQ(ModelToText(result.model), ref_text);
}

// With only two workers a replicated-digest disagreement is 1-vs-1: detected
// but unattributable (blamed rank -1). The layer recompute still heals it.
TEST(SilentCorruptTest, TwoWorkerTieIsDetectedButUnattributed) {
  const Dataset data = MakeData(700, 20, 331);
  const DistTrainOptions base = SmallOptions();

  Cluster clean(2);
  const DistResult ref = TrainDistributed(clean, data, Quadrant::kQD1, base);
  ASSERT_TRUE(ref.status.ok());

  Cluster cluster(2);
  cluster.InstallFaultPlan(FaultPlan().SilentCorrupt(
      1, CollectiveOp::kAllReduceSum, /*occurrence=*/1, /*seed=*/55,
      FaultPhase::kTrain));
  const DistResult result = TrainDistributed(
      cluster, data, Quadrant::kQD1, WithIntegrity(base, IntegrityLevel::kFull));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.integrity.violations, 1u);
  EXPECT_EQ(result.integrity.recomputes, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, -1);
  EXPECT_EQ(ModelToText(result.model), ModelToText(ref.model));
}

// ---------------------------------------------------------------------------
// Compute poison: NaN / Inf planted in gradient and histogram buffers.
// ---------------------------------------------------------------------------

// A NaN planted in one worker's gradient buffer sums into every rank's root
// stats identically, so replicated digests agree — at off AND at checksum
// the poisoned model escapes. Only the full-level non-finite scan catches
// it, blames the poisoned rank, and a recompute restores the clean model.
TEST(PoisonTest, GradientNaNNeedsFullLevel) {
  const Dataset data = MakeData(800, 20, 337);
  const DistTrainOptions base = SmallOptions();

  Cluster clean(3);
  const DistResult ref = TrainDistributed(clean, data, Quadrant::kQD1, base);
  ASSERT_TRUE(ref.status.ok());
  const std::string ref_text = ModelToText(ref.model);

  const auto poison_plan = [] {
    return FaultPlan().Poison(1, ComputePoint::kGradient, /*occurrence=*/1,
                              /*inf=*/false, FaultPhase::kTrain, /*seed=*/1);
  };

  for (const IntegrityLevel level :
       {IntegrityLevel::kOff, IntegrityLevel::kChecksum}) {
    Cluster cluster(3);
    cluster.InstallFaultPlan(poison_plan());
    const DistResult escaped = TrainDistributed(cluster, data, Quadrant::kQD1,
                                                WithIntegrity(base, level));
    ASSERT_TRUE(escaped.status.ok()) << escaped.status.ToString();
    EXPECT_EQ(escaped.integrity.violations, 0u) << IntegrityLevelToString(level);
    EXPECT_NE(ModelToText(escaped.model), ref_text)
        << IntegrityLevelToString(level);
  }

  Cluster cluster(3);
  cluster.InstallFaultPlan(poison_plan());
  const DistResult result = TrainDistributed(
      cluster, data, Quadrant::kQD1, WithIntegrity(base, IntegrityLevel::kFull));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.integrity.violations, 1u);
  EXPECT_EQ(result.integrity.recomputes, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 1);
  EXPECT_EQ(ModelToText(result.model), ref_text);
}

// +Inf planted in a built histogram is caught by the pre-aggregation scan
// before the poisoned cell can dissolve into every rank's aggregate, so the
// blame lands on the poisoned worker and the layer rebuild heals the run.
TEST(PoisonTest, HistogramInfBlamedAndRecomputed) {
  const Dataset data = MakeData(800, 20, 347);
  const DistTrainOptions base = SmallOptions();

  Cluster clean(3);
  const DistResult ref = TrainDistributed(clean, data, Quadrant::kQD1, base);
  ASSERT_TRUE(ref.status.ok());

  Cluster cluster(3);
  // Occurrence 3 of the histogram stream = tree 1's root layer, which is
  // built without subtraction — so the healed rebuild is bit-exact.
  cluster.InstallFaultPlan(FaultPlan().Poison(0, ComputePoint::kHistogram,
                                              /*occurrence=*/3, /*inf=*/true,
                                              FaultPhase::kTrain));
  const DistResult result = TrainDistributed(
      cluster, data, Quadrant::kQD1, WithIntegrity(base, IntegrityLevel::kFull));
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GE(result.integrity.violations, 1u);
  EXPECT_EQ(result.integrity.recomputes, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 0);
  EXPECT_EQ(ModelToText(result.model), ModelToText(ref.model));
}

// ---------------------------------------------------------------------------
// Escalation: recompute budget exhausted -> blame-attributed rollback.
// ---------------------------------------------------------------------------

// Corruption that persists across the recompute (two consecutive occurrences
// of the same collective) exhausts integrity_max_recomputes. The blamed
// worker is failed, and with checkpoint + recovery budget the run rolls
// back, finishes on the survivors, and records the integrity rollback.
TEST(EscalationTest, PersistentCorruptionRollsBackViaCheckpoint) {
  const Dataset data = MakeData(900, 24, 349);
  DistTrainOptions options = SmallOptions();
  options.params.integrity = IntegrityLevel::kFull;
  options.checkpoint.interval = 1;

  Cluster cluster(3);
  // Occurrence 8 = tree 1's root-layer histogram aggregate; occurrence 9 is
  // consumed by the recompute's re-aggregation, so the corruption survives
  // the retry and exhausts integrity_max_recomputes.
  cluster.InstallFaultPlan(
      FaultPlan()
          .SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/8,
                         /*seed=*/77, FaultPhase::kTrain)
          .SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/9,
                         /*seed=*/78, FaultPhase::kTrain));
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 6u);
  EXPECT_EQ(result.integrity.recomputes, 1u);
  EXPECT_GE(result.integrity.escalations, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 2);
  EXPECT_EQ(result.integrity_rollbacks, 1);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  EXPECT_EQ(result.recovery.final_world_size, 2);
  EXPECT_GT(result.recovery.trees_recovered, 0u);  // Tree 0's checkpoint held.
  EXPECT_EQ(cluster.dead_ranks(), std::vector<int>{2});
}

// Corrupting the small child-count all-reduce would leave the ranks with
// divergent frontiers — a desynchronized cluster, not just a wrong model.
// The per-layer counts audit catches it immediately after ApplyLayerSplits,
// escalates without burning a recompute (placement is already committed),
// and the run rolls back past it.
TEST(EscalationTest, CountsCorruptionEscalatesWithoutRecompute) {
  const Dataset data = MakeData(900, 24, 349);
  DistTrainOptions options = SmallOptions();
  options.params.integrity = IntegrityLevel::kChecksum;
  options.checkpoint.interval = 1;

  Cluster cluster(3);
  // Occurrence 9 = tree 1's root-layer child-count all-reduce.
  cluster.InstallFaultPlan(FaultPlan().SilentCorrupt(
      2, CollectiveOp::kAllReduceSum, /*occurrence=*/9, /*seed=*/81,
      FaultPhase::kTrain));
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 6u);
  EXPECT_EQ(result.integrity.recomputes, 0u);
  EXPECT_GE(result.integrity.escalations, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 2);
  EXPECT_EQ(result.integrity_rollbacks, 1);
  EXPECT_EQ(result.recovery.final_world_size, 2);
}

// The same persistent corruption with a zero recovery budget surfaces as a
// failed run whose status names the integrity subsystem — detected, blamed,
// but unrecoverable by policy. The salvaged counters still report the
// escalation.
TEST(EscalationTest, NoRecoveryBudgetFailsWithIntegrityStatus) {
  const Dataset data = MakeData(900, 24, 349);
  DistTrainOptions options = SmallOptions();
  options.params.integrity = IntegrityLevel::kFull;
  options.max_recovery_attempts = 0;

  Cluster cluster(3);
  cluster.InstallFaultPlan(
      FaultPlan()
          .SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/8,
                         /*seed=*/77, FaultPhase::kTrain)
          .SilentCorrupt(2, CollectiveOp::kAllReduceSum, /*occurrence=*/9,
                         /*seed=*/78, FaultPhase::kTrain));
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);

  EXPECT_FALSE(result.status.ok());
  EXPECT_NE(result.status.message().find("integrity"), std::string::npos)
      << result.status.ToString();
  EXPECT_GE(result.integrity.escalations, 1u);
  EXPECT_EQ(result.integrity.last_blamed_rank, 2);
}

// ---------------------------------------------------------------------------
// Noisy-transport escalation (satellite): CRC-visible corruption that keeps
// failing past RetryPolicy::max_attempts escalates to a crash.
// ---------------------------------------------------------------------------

class RetryExhaustionTest : public ::testing::TestWithParam<FaultKind> {};

TEST_P(RetryExhaustionTest, ExhaustedRetriesEscalateToCrash) {
  const Dataset data = MakeData(700, 20, 353);
  DistTrainOptions options = SmallOptions(4, 4);
  options.max_recovery_attempts = 0;

  FaultPlan plan;
  // 5 consecutive bad attempts > RetryPolicy{max_attempts=3}: unrecoverable
  // by retry alone.
  if (GetParam() == FaultKind::kCorrupt) {
    plan.Corrupt(1, CollectiveOp::kAllReduceSum, /*occurrence=*/2,
                 /*attempts=*/5, FaultPhase::kTrain);
  } else {
    plan.Truncate(1, CollectiveOp::kAllReduceSum, /*occurrence=*/2,
                  /*attempts=*/5, FaultPhase::kTrain);
  }
  Cluster cluster(3);
  cluster.InstallFaultPlan(plan);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, options);

  // The survivors observe the escalated crash as kUnavailable.
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.recovery.failures_observed, 1);
  EXPECT_EQ(cluster.dead_ranks(), std::vector<int>{1});
  // The failed attempts' traffic is charged: retransmissions on the wire,
  // and the aborted attempt's work in the run's waste accounting.
  EXPECT_GT(cluster.worker_stats(1).retransmitted_bytes, 0u);
  EXPECT_GE(cluster.worker_stats(1).num_retries, 3u);
  EXPECT_GT(result.wasted_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(CorruptAndTruncate, RetryExhaustionTest,
                         ::testing::Values(FaultKind::kCorrupt,
                                           FaultKind::kTruncate));

// ---------------------------------------------------------------------------
// Parameter validation + dataset rejection coordinates (satellites).
// ---------------------------------------------------------------------------

TEST(IntegrityParamsTest, ValidateRejectsBadKnobs) {
  GbdtParams params;
  ASSERT_TRUE(params.Validate().ok());

  params.integrity_tolerance = 0.0;
  EXPECT_FALSE(params.Validate().ok());
  params.integrity_tolerance = 2.0;
  EXPECT_FALSE(params.Validate().ok());
  params.integrity_tolerance = 1e-6;

  params.integrity = IntegrityLevel::kFull;
  params.integrity_max_recomputes = 17;
  EXPECT_FALSE(params.Validate().ok());
  // The cap only binds when auditing is enabled.
  params.integrity = IntegrityLevel::kOff;
  EXPECT_TRUE(params.Validate().ok());
}

TEST(DatasetIntegrityTest, NonFiniteRejectionNamesTheCell) {
  // Row 1 holds a NaN at feature 2; the rejection must say so.
  CsrMatrix matrix(4, {0, 2, 4, 5},
                   {0, 1, 2, 3, 1},
                   {1.0f, 2.0f, std::nanf(""), 4.0f, 5.0f});
  Dataset data(std::move(matrix), {0.0f, 1.0f, 0.0f}, Task::kBinary, 2);
  const Status status = data.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("row 1"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("feature 2"), std::string::npos)
      << status.ToString();
  EXPECT_NE(status.message().find("nan"), std::string::npos)
      << status.ToString();
}

TEST(DatasetIntegrityTest, LabelRejectionNamesTheRow) {
  CsrMatrix matrix(2, {0, 1, 2}, {0, 1}, {1.0f, 2.0f});
  Dataset data(std::move(matrix), {0.0f, 3.0f}, Task::kBinary, 2);
  const Status status = data.Validate();
  ASSERT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("row 1"), std::string::npos)
      << status.ToString();
}

}  // namespace
}  // namespace vero
