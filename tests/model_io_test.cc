#include "core/model_io.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <gtest/gtest.h>
#include <iterator>
#include <vector>

namespace vero {
namespace {

GbdtModel MakeModel() {
  GbdtModel model(Task::kBinary, 2, 0.3);
  Tree t(3, 1);
  t.SetSplit(0, 4, 1.5f, 2, false, 3.0);
  t.SetLeaf(1, {-0.5f});
  t.SetLeaf(2, {0.5f});
  model.AddTree(std::move(t));
  return model;
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/model_io.bin";
  const GbdtModel model = MakeModel();
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_trees(), 1u);
  EXPECT_TRUE(loaded->tree(0) == model.tree(0));
  EXPECT_DOUBLE_EQ(loaded->learning_rate(), 0.3);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadModel("/no/such/file.bin").status().code(),
            StatusCode::kIOError);
}

TEST(ModelIoTest, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad_magic.bin";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a model file at all";
  out.close();
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/truncated.bin";
  ASSERT_TRUE(SaveModel(MakeModel(), path).ok());
  // Truncate to the first 12 bytes.
  std::ifstream in(path, std::ios::binary);
  char buf[12];
  in.read(buf, 12);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(buf, 12);
  out.close();
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveToUnwritablePathFails) {
  EXPECT_EQ(SaveModel(MakeModel(), "/no/such/dir/model.bin").code(),
            StatusCode::kIOError);
}

std::vector<uint8_t> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path,
                    const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Fuzz-style hardening check: a single bit flip anywhere in the file —
// header, payload, or CRC trailer — must be reported as corruption, never
// deserialize garbage or crash.
TEST(ModelIoFuzzTest, EveryBitFlipIsDetected) {
  const std::string path = ::testing::TempDir() + "/flip.bin";
  ASSERT_TRUE(SaveModel(MakeModel(), path).ok());
  const std::vector<uint8_t> original = ReadFileBytes(path);
  ASSERT_GT(original.size(), 12u);
  for (size_t offset = 0; offset < original.size(); ++offset) {
    std::vector<uint8_t> damaged = original;
    damaged[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    WriteFileBytes(path, damaged);
    const auto loaded = LoadModel(path);
    ASSERT_FALSE(loaded.ok()) << "bit flip at offset " << offset
                              << " was not detected";
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption)
        << "offset " << offset << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

// Every possible truncation length must fail cleanly with kCorruption or
// kIOError — short files must never crash the reader.
TEST(ModelIoFuzzTest, EveryTruncationFailsCleanly) {
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(SaveModel(MakeModel(), path).ok());
  const std::vector<uint8_t> original = ReadFileBytes(path);
  for (size_t len = 0; len < original.size(); ++len) {
    WriteFileBytes(path, std::vector<uint8_t>(original.begin(),
                                              original.begin() + len));
    const auto loaded = LoadModel(path);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << len
                              << " bytes was not detected";
    EXPECT_TRUE(loaded.status().code() == StatusCode::kCorruption ||
                loaded.status().code() == StatusCode::kIOError)
        << "len " << len << ": " << loaded.status().ToString();
  }
  std::remove(path.c_str());
}

// Appending junk after the payload is framing corruption, not extra data.
TEST(ModelIoFuzzTest, TrailingBytesAreRejected) {
  const std::string path = ::testing::TempDir() + "/trailing.bin";
  ASSERT_TRUE(SaveModel(MakeModel(), path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbe, 0xef});
  WriteFileBytes(path, bytes);
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

// Version-1 files (no CRC trailer) predate the hardening and must remain
// readable. Synthesized from a v2 file by rewriting the version field and
// dropping the trailer (fields are stored native-endian).
TEST(ModelIoTest, LegacyVersionWithoutCrcStillLoads) {
  const std::string path = ::testing::TempDir() + "/legacy.bin";
  const GbdtModel model = MakeModel();
  ASSERT_TRUE(SaveModel(model, path).ok());
  std::vector<uint8_t> bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 12u);
  const uint32_t legacy_version = 1;
  std::memcpy(bytes.data() + 4, &legacy_version, sizeof(legacy_version));
  bytes.resize(bytes.size() - 4);  // Drop the CRC trailer.
  WriteFileBytes(path, bytes);
  const auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->tree(0) == model.tree(0));
  std::remove(path.c_str());
}

TEST(ModelIoTest, TextDumpMentionsStructure) {
  const std::string text = ModelToText(MakeModel());
  EXPECT_NE(text.find("task=binary"), std::string::npos);
  EXPECT_NE(text.find("split f4"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_NE(text.find("tree 0"), std::string::npos);
}

}  // namespace
}  // namespace vero
