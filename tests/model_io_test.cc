#include "core/model_io.h"

#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

namespace vero {
namespace {

GbdtModel MakeModel() {
  GbdtModel model(Task::kBinary, 2, 0.3);
  Tree t(3, 1);
  t.SetSplit(0, 4, 1.5f, 2, false, 3.0);
  t.SetLeaf(1, {-0.5f});
  t.SetLeaf(2, {0.5f});
  model.AddTree(std::move(t));
  return model;
}

TEST(ModelIoTest, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/model_io.bin";
  const GbdtModel model = MakeModel();
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_trees(), 1u);
  EXPECT_TRUE(loaded->tree(0) == model.tree(0));
  EXPECT_DOUBLE_EQ(loaded->learning_rate(), 0.3);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadModel("/no/such/file.bin").status().code(),
            StatusCode::kIOError);
}

TEST(ModelIoTest, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad_magic.bin";
  std::ofstream out(path, std::ios::binary);
  out << "this is not a model file at all";
  out.close();
  EXPECT_EQ(LoadModel(path).status().code(), StatusCode::kCorruption);
  std::remove(path.c_str());
}

TEST(ModelIoTest, LoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/truncated.bin";
  ASSERT_TRUE(SaveModel(MakeModel(), path).ok());
  // Truncate to the first 12 bytes.
  std::ifstream in(path, std::ios::binary);
  char buf[12];
  in.read(buf, 12);
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(buf, 12);
  out.close();
  EXPECT_FALSE(LoadModel(path).ok());
  std::remove(path.c_str());
}

TEST(ModelIoTest, SaveToUnwritablePathFails) {
  EXPECT_EQ(SaveModel(MakeModel(), "/no/such/dir/model.bin").code(),
            StatusCode::kIOError);
}

TEST(ModelIoTest, TextDumpMentionsStructure) {
  const std::string text = ModelToText(MakeModel());
  EXPECT_NE(text.find("task=binary"), std::string::npos);
  EXPECT_NE(text.find("split f4"), std::string::npos);
  EXPECT_NE(text.find("leaf"), std::string::npos);
  EXPECT_NE(text.find("tree 0"), std::string::npos);
}

}  // namespace
}  // namespace vero
