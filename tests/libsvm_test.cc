#include "data/libsvm_io.h"

#include <cstdio>
#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace vero {
namespace {

TEST(LibsvmTest, ParsesBasicBinaryFile) {
  const std::string content =
      "1 1:0.5 3:1.25\n"
      "-1 2:2.0\n"
      "0 1:0.1 2:0.2 3:0.3\n";
  LibsvmReadOptions options;
  options.task = Task::kBinary;
  auto d = ParseLibsvm(content, options);
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_instances(), 3u);
  EXPECT_EQ(d->num_features(), 3u);  // 1-based indices shifted down.
  EXPECT_EQ(d->labels()[0], 1.0f);
  EXPECT_EQ(d->labels()[1], 0.0f);  // -1 mapped to 0.
  EXPECT_EQ(d->matrix().RowFeatures(0)[1], 2u);
  EXPECT_EQ(d->matrix().RowValues(0)[1], 1.25f);
}

TEST(LibsvmTest, ZeroBasedIndices) {
  LibsvmReadOptions options;
  options.one_based_indices = false;
  auto d = ParseLibsvm("1 0:1.0 4:2.0\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_features(), 5u);
  EXPECT_EQ(d->matrix().RowFeatures(0)[0], 0u);
}

TEST(LibsvmTest, SkipsBlankLinesAndComments) {
  auto d = ParseLibsvm("\n# header\n1 1:1.0\n\n0 1:2.0\n", LibsvmReadOptions{});
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_instances(), 2u);
}

TEST(LibsvmTest, MultiClassInfersClassCount) {
  LibsvmReadOptions options;
  options.task = Task::kMultiClass;
  auto d = ParseLibsvm("0 1:1\n4 1:2\n2 1:3\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_classes(), 5u);
}

TEST(LibsvmTest, ExplicitFeatureCountWins) {
  LibsvmReadOptions options;
  options.num_features = 100;
  auto d = ParseLibsvm("1 1:1.0\n", options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->num_features(), 100u);
}

TEST(LibsvmTest, RejectsMalformedLabel) {
  auto d = ParseLibsvm("abc 1:1.0\n", LibsvmReadOptions{});
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
}

TEST(LibsvmTest, RejectsMalformedEntry) {
  EXPECT_FALSE(ParseLibsvm("1 1:\n", LibsvmReadOptions{}).ok());
  EXPECT_FALSE(ParseLibsvm("1 :2\n", LibsvmReadOptions{}).ok());
  EXPECT_FALSE(ParseLibsvm("1 1:2:3\n", LibsvmReadOptions{}).ok());
}

TEST(LibsvmTest, RejectsZeroIndexInOneBasedFile) {
  auto d = ParseLibsvm("1 0:1.0\n", LibsvmReadOptions{});
  EXPECT_EQ(d.status().code(), StatusCode::kCorruption);
}

TEST(LibsvmTest, HandlesCarriageReturns) {
  auto d = ParseLibsvm("1 1:1.0\r\n0 2:2.0\r\n", LibsvmReadOptions{});
  ASSERT_TRUE(d.ok()) << d.status().ToString();
  EXPECT_EQ(d->num_instances(), 2u);
}

TEST(LibsvmTest, FileRoundTrip) {
  SyntheticConfig config;
  config.num_instances = 100;
  config.num_features = 20;
  config.num_classes = 3;
  config.density = 0.4;
  const Dataset original = GenerateSynthetic(config);

  const std::string path = ::testing::TempDir() + "/libsvm_roundtrip.txt";
  ASSERT_TRUE(WriteLibsvmFile(original, path).ok());

  LibsvmReadOptions options;
  options.task = Task::kMultiClass;
  options.num_features = original.num_features();
  auto reloaded = ReadLibsvmFile(path, options);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->num_instances(), original.num_instances());
  EXPECT_EQ(reloaded->labels(), original.labels());
  EXPECT_EQ(reloaded->matrix().features(), original.matrix().features());
  for (size_t k = 0; k < original.matrix().values().size(); ++k) {
    EXPECT_NEAR(reloaded->matrix().values()[k], original.matrix().values()[k],
                1e-5f);
  }
  std::remove(path.c_str());
}

TEST(LibsvmTest, MissingFileIsIOError) {
  auto d = ReadLibsvmFile("/nonexistent/path.txt", LibsvmReadOptions{});
  EXPECT_EQ(d.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace vero
