// Unit tests for remaining small surfaces: TreeCost summaries, the split
// exchange helpers, feature masks, histogram-pool shape handling, and the
// quadrant taxonomy helpers.

#include <cmath>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"
#include "quadrants/dist_common.h"

namespace vero {
namespace {

TEST(TreeCostTest, TotalsAndAccumulation) {
  TreeCost a;
  a.gradient_seconds = 1;
  a.hist_seconds = 2;
  a.find_split_seconds = 3;
  a.node_split_seconds = 4;
  a.other_seconds = 5;
  a.comm_seconds = 10;
  EXPECT_DOUBLE_EQ(a.comp_seconds(), 15.0);
  EXPECT_DOUBLE_EQ(a.total_seconds(), 25.0);
  TreeCost b = a;
  b += a;
  EXPECT_DOUBLE_EQ(b.comp_seconds(), 30.0);
  EXPECT_DOUBLE_EQ(b.comm_seconds, 20.0);
}

TEST(TreeCostSummaryTest, MeanAndStd) {
  TreeCost a, b;
  a.hist_seconds = 1.0;
  a.comm_seconds = 2.0;
  b.hist_seconds = 3.0;
  b.comm_seconds = 4.0;
  const TreeCostSummary s = SummarizeTreeCosts({a, b});
  EXPECT_DOUBLE_EQ(s.mean.hist_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.mean.comm_seconds, 3.0);
  // Sample std of {1,3} (comp) and {2,4} (comm) is sqrt(2).
  EXPECT_NEAR(s.comp_std, std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(s.comm_std, std::sqrt(2.0), 1e-12);
}

TEST(TreeCostSummaryTest, EmptyAndSingle) {
  EXPECT_DOUBLE_EQ(SummarizeTreeCosts({}).mean.comp_seconds(), 0.0);
  TreeCost a;
  a.hist_seconds = 5.0;
  const TreeCostSummary s = SummarizeTreeCosts({a});
  EXPECT_DOUBLE_EQ(s.mean.hist_seconds, 5.0);
  EXPECT_DOUBLE_EQ(s.comp_std, 0.0);
}

TEST(SplitExchangeTest, SerializeRoundTripVector) {
  std::vector<SplitCandidate> splits(3);
  splits[0].valid = true;
  splits[0].feature = 7;
  splits[0].gain = 1.5;
  splits[0].left_stats = {{1, 2}};
  splits[0].right_stats = {{3, 4}};
  splits[2].valid = true;
  splits[2].feature = 2;
  const auto bytes = SerializeSplits(splits);
  const auto back = DeserializeSplits(bytes);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back[0].valid);
  EXPECT_EQ(back[0].feature, 7u);
  EXPECT_FALSE(back[1].valid);
  EXPECT_EQ(back[2].feature, 2u);
}

TEST(SplitExchangeTest, MergePicksBetterPerSlot) {
  std::vector<SplitCandidate> a(2), b(2);
  a[0].valid = true;
  a[0].gain = 1.0;
  a[0].feature = 5;
  b[0].valid = true;
  b[0].gain = 2.0;
  b[0].feature = 9;
  b[1].valid = true;
  b[1].gain = 0.5;
  std::vector<SplitCandidate> best;
  MergeBestSplits(a, &best);
  MergeBestSplits(b, &best);
  EXPECT_EQ(best[0].feature, 9u);   // Higher gain wins slot 0.
  EXPECT_TRUE(best[1].valid);       // Only b had slot 1.
}

TEST(SplitFinderMaskTest, MaskedFeaturesNeverChosen) {
  Histogram hist(2, 3, 1);
  GradPair neg{-10.0, 5.0}, pos{10.0, 5.0};
  // Feature 0 offers a perfect split; feature 1 a weak one.
  hist.Add(0, 0, &neg);
  hist.Add(0, 1, &pos);
  GradPair weak_a{-1.0, 5.0}, weak_b{1.0, 5.0};
  hist.Add(1, 0, &weak_a);
  hist.Add(1, 1, &weak_b);
  GradStats node = {{0.0, 10.0}};
  CandidateSplits splits(3, {{1.0f, 2.0f, 3.0f}, {1.0f, 2.0f, 3.0f}});
  SplitFinder finder(1.0, 0.0, 0.0);

  const std::vector<bool> only_f1 = {false, true};
  const SplitCandidate best =
      finder.FindBest(hist, node, {0, 1}, splits, &only_f1);
  ASSERT_TRUE(best.valid);
  EXPECT_EQ(best.feature, 1u);  // The strong feature 0 is masked out.

  const std::vector<bool> none = {false, false};
  EXPECT_FALSE(finder.FindBest(hist, node, {0, 1}, splits, &none).valid);
}

TEST(HistogramPoolTest, FreelistShapeMismatchAllocatesFresh) {
  HistogramPool pool;
  pool.Acquire(0, 4, 4, 1);
  pool.Release(0);
  // Different shape: the recycled buffer cannot be reused.
  Histogram* h = pool.Acquire(1, 8, 2, 2);
  EXPECT_EQ(h->num_features(), 8u);
  EXPECT_EQ(h->num_bins(), 2u);
  EXPECT_EQ(h->num_dims(), 2u);
}

TEST(HistogramPoolTest, ZeroFeatureHistogramKeepsShapeMetadata) {
  HistogramPool pool;
  Histogram* h = pool.Acquire(0, 0, 20, 3);
  EXPECT_EQ(h->num_features(), 0u);
  EXPECT_EQ(h->num_bins(), 20u);
  EXPECT_EQ(h->num_dims(), 3u);
  EXPECT_EQ(h->MemoryBytes(), 0u);
}

TEST(QuadrantTaxonomyTest, NamesAndOrientation) {
  EXPECT_FALSE(IsVertical(Quadrant::kQD1));
  EXPECT_FALSE(IsVertical(Quadrant::kQD2));
  EXPECT_TRUE(IsVertical(Quadrant::kQD3));
  EXPECT_TRUE(IsVertical(Quadrant::kQD4));
  EXPECT_FALSE(IsVertical(Quadrant::kFeatureParallel));
  EXPECT_NE(std::string(QuadrantToString(Quadrant::kQD4)).find("Vero"),
            std::string::npos);
}

TEST(MarginConsistencyTest, IncrementalValidMetricMatchesFullPrediction) {
  // The trainer updates validation margins incrementally (one tree at a
  // time); the final value must agree exactly with routing every instance
  // through the finished model.
  SyntheticConfig config;
  config.num_instances = 2500;
  config.num_features = 25;
  config.density = 0.4;
  config.seed = 151;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, valid] = data.SplitTail(0.3);
  GbdtParams params;
  params.num_trees = 8;
  params.num_layers = 5;
  params.num_candidate_splits = 16;
  double last_incremental = -1.0;
  Trainer trainer(params);
  auto model = trainer.Train(train, &valid, [&](const IterationStats& it) {
    last_incremental = it.valid_metric;
  });
  ASSERT_TRUE(model.ok());
  const double full = EvaluateModel(*model, valid).value;
  EXPECT_NEAR(last_incremental, full, 1e-12);
}

TEST(MarginConsistencyTest, TrainMarginsMatchModelRouting) {
  // Partition-based margin accumulation during training must agree with
  // post-hoc routing (ties the node-to-instance index to the tree tests).
  SyntheticConfig config;
  config.num_instances = 1500;
  config.num_features = 20;
  config.density = 0.5;
  config.seed = 153;
  const Dataset train = GenerateSynthetic(config);
  GbdtParams params;
  params.num_trees = 6;
  params.num_layers = 5;
  double final_loss = -1.0;
  Trainer trainer(params);
  auto model = trainer.Train(train, nullptr, [&](const IterationStats& it) {
    final_loss = it.train_loss;
  });
  ASSERT_TRUE(model.ok());
  const auto margins = model->PredictDatasetMargins(train);
  const double routed_loss =
      LogLoss(train.task(), train.num_classes(), train.labels(), margins);
  EXPECT_NEAR(final_loss, routed_loss, 1e-9);
}

}  // namespace
}  // namespace vero
