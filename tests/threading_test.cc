#include "common/threading.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

namespace vero {
namespace {

TEST(BarrierTest, ExactlyOneSerialParticipantPerCycle) {
  const size_t n = 4;
  Barrier barrier(n);
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      for (int cycle = 0; cycle < 50; ++cycle) {
        if (barrier.ArriveAndWait()) serial_count.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(serial_count.load(), 50);
}

TEST(BarrierTest, SynchronizesPhases) {
  const size_t n = 3;
  Barrier barrier(n);
  std::atomic<int> phase_sum{0};
  std::atomic<bool> violated{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < n; ++t) {
    threads.emplace_back([&] {
      for (int cycle = 0; cycle < 100; ++cycle) {
        phase_sum.fetch_add(1);
        barrier.ArriveAndWait();
        // Between barriers every thread must have incremented.
        if (phase_sum.load() < static_cast<int>(n) * (cycle + 1)) {
          violated.store(true);
        }
        barrier.ArriveAndWait();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violated.load());
}

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, DestructorJoinsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) pool.Submit([&] { counter.fetch_add(1); });
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, ZeroIterations) {
  ParallelFor(0, 4, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadFallback) {
  std::vector<int> order;
  ParallelFor(5, 1, [&](size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace vero
