#include "quadrants/advisor.h"

#include <gtest/gtest.h>

namespace vero {
namespace {

EnvironmentSpec LabEnv(int workers = 8) {
  EnvironmentSpec env;
  env.num_workers = workers;
  env.network = NetworkModel::Lab1Gbps();
  return env;
}

WorkloadSpec MakeWorkload(uint64_t n, uint64_t d, uint32_t c,
                          double density) {
  WorkloadSpec w;
  w.num_instances = n;
  w.num_features = d;
  w.num_classes = c;
  w.density = density;
  return w;
}

TEST(AdvisorTest, SizehistMatchesPaperFormula) {
  // The Age example of §3.1.4: 330K features, q=20, 9 classes -> ~906 MB.
  WorkloadSpec w = MakeWorkload(48000000, 330000, 9, 0.001);
  const uint64_t bytes = QuadrantAdvisor::HistogramBytesPerNode(w);
  EXPECT_EQ(bytes, 2ull * 330000 * 20 * 9 * 8);
  EXPECT_NEAR(bytes / 1e6, 950.4, 0.1);
}

TEST(AdvisorTest, BinaryUsesOneGradientDim) {
  WorkloadSpec w = MakeWorkload(1000, 100, 2, 0.1);
  EXPECT_EQ(w.gradient_dim(), 1u);
  w.num_classes = 9;
  EXPECT_EQ(w.gradient_dim(), 9u);
}

TEST(AdvisorTest, HighDimensionalPrefersVertical) {
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec w = MakeWorkload(1000000, 100000, 2, 0.001);
  EXPECT_TRUE(IsVertical(advisor.Recommend(w)))
      << QuadrantToString(advisor.Recommend(w));
}

TEST(AdvisorTest, MultiClassPrefersVertical) {
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec w = MakeWorkload(500000, 20000, 50, 0.01);
  EXPECT_TRUE(IsVertical(advisor.Recommend(w)));
}

TEST(AdvisorTest, LowDimHugeNPrefersHorizontal) {
  // SUSY-like: 5M x 18 dense, binary — LightGBM's (QD2's) home turf.
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec w = MakeWorkload(5000000, 18, 2, 1.0);
  EXPECT_EQ(advisor.Recommend(w), Quadrant::kQD2);
}

TEST(AdvisorTest, Qd1NeverBeatsQd2) {
  // All-reduce moves 2x a reduce-scatter and QD1 lacks subtraction; for any
  // workload QD2 should be estimated at most as expensive.
  QuadrantAdvisor advisor(LabEnv());
  for (const WorkloadSpec& w :
       {MakeWorkload(100000, 100, 2, 1.0), MakeWorkload(10000, 50000, 2, 0.01),
        MakeWorkload(1000000, 5000, 10, 0.05)}) {
    const QuadrantEstimate qd1 = advisor.Estimate(w, Quadrant::kQD1);
    const QuadrantEstimate qd2 = advisor.Estimate(w, Quadrant::kQD2);
    EXPECT_GE(qd1.total_seconds(), qd2.total_seconds());
    EXPECT_GE(qd1.comm_bytes_per_tree, qd2.comm_bytes_per_tree);
  }
}

TEST(AdvisorTest, VerticalMemoryIsWTimesSmaller) {
  QuadrantAdvisor advisor(LabEnv(8));
  const WorkloadSpec w = MakeWorkload(100000, 10000, 2, 0.01);
  const QuadrantEstimate qd2 = advisor.Estimate(w, Quadrant::kQD2);
  const QuadrantEstimate qd4 = advisor.Estimate(w, Quadrant::kQD4);
  EXPECT_NEAR(static_cast<double>(qd2.histogram_bytes) / qd4.histogram_bytes,
              8.0, 0.01);
}

TEST(AdvisorTest, HorizontalCommGrowsWithDVerticalDoesNot) {
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec small_d = MakeWorkload(100000, 1000, 2, 0.05);
  WorkloadSpec big_d = small_d;
  big_d.num_features = 100000;
  EXPECT_GT(advisor.Estimate(big_d, Quadrant::kQD2).comm_seconds,
            10 * advisor.Estimate(small_d, Quadrant::kQD2).comm_seconds);
  EXPECT_NEAR(advisor.Estimate(big_d, Quadrant::kQD4).comm_seconds,
              advisor.Estimate(small_d, Quadrant::kQD4).comm_seconds, 1e-9);
}

TEST(AdvisorTest, VerticalCommGrowsWithNHorizontalDoesNot) {
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec small_n = MakeWorkload(100000, 10000, 2, 0.01);
  WorkloadSpec big_n = small_n;
  big_n.num_instances = 10000000;
  EXPECT_GT(advisor.Estimate(big_n, Quadrant::kQD4).comm_seconds,
            10 * advisor.Estimate(small_n, Quadrant::kQD4).comm_seconds);
  EXPECT_NEAR(advisor.Estimate(big_n, Quadrant::kQD2).comm_seconds,
              advisor.Estimate(small_n, Quadrant::kQD2).comm_seconds, 1e-9);
}

TEST(AdvisorTest, HorizontalCommProportionalToClasses) {
  QuadrantAdvisor advisor(LabEnv());
  const WorkloadSpec c3 = MakeWorkload(100000, 10000, 3, 0.01);
  WorkloadSpec c9 = c3;
  c9.num_classes = 9;
  EXPECT_NEAR(advisor.Estimate(c9, Quadrant::kQD2).comm_bytes_per_tree /
                  static_cast<double>(
                      advisor.Estimate(c3, Quadrant::kQD2).comm_bytes_per_tree),
              3.0, 0.01);
  EXPECT_EQ(advisor.Estimate(c9, Quadrant::kQD4).comm_bytes_per_tree,
            advisor.Estimate(c3, Quadrant::kQD4).comm_bytes_per_tree);
}

TEST(AdvisorTest, MemoryBudgetDemotesOversizedQuadrants) {
  EnvironmentSpec env = LabEnv();
  env.memory_budget_bytes = 100 << 20;  // 100 MB.
  QuadrantAdvisor advisor(env);
  // Big multi-class histograms: horizontal cannot fit.
  const WorkloadSpec w = MakeWorkload(1000000, 50000, 10, 0.002);
  const auto ranking = advisor.Rank(w);
  EXPECT_FALSE(advisor.Estimate(w, Quadrant::kQD2).fits_memory);
  // Every infeasible quadrant ranks after every feasible one.
  bool seen_infeasible = false;
  for (const QuadrantEstimate& e : ranking) {
    if (!e.fits_memory) seen_infeasible = true;
    if (seen_infeasible) EXPECT_FALSE(e.fits_memory);
  }
  EXPECT_TRUE(IsVertical(ranking.front().quadrant));
}

TEST(AdvisorTest, FasterNetworkShiftsTowardHorizontal) {
  // The paper's Gender finding: on the 10 Gbps production network DimBoost
  // (QD2) overtakes Vero for the huge-N low-ish-D binary workload.
  const WorkloadSpec gender = MakeWorkload(122000000, 330000, 2, 0.0001);
  EnvironmentSpec slow = LabEnv();
  EnvironmentSpec fast = LabEnv();
  fast.network = NetworkModel::Production10Gbps();
  const double slow_gap =
      QuadrantAdvisor(slow).Estimate(gender, Quadrant::kQD2).total_seconds() /
      QuadrantAdvisor(slow).Estimate(gender, Quadrant::kQD4).total_seconds();
  const double fast_gap =
      QuadrantAdvisor(fast).Estimate(gender, Quadrant::kQD2).total_seconds() /
      QuadrantAdvisor(fast).Estimate(gender, Quadrant::kQD4).total_seconds();
  EXPECT_LT(fast_gap, slow_gap);  // QD2 relatively better on fast network.
}

TEST(AdvisorTest, ExplainMentionsEveryQuadrant) {
  QuadrantAdvisor advisor(LabEnv());
  const std::string report =
      advisor.Explain(MakeWorkload(10000, 1000, 2, 0.1));
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    EXPECT_NE(report.find(QuadrantToString(q)), std::string::npos);
  }
}

TEST(AdvisorTest, CalibrateProducesPositiveThroughputs) {
  const EnvironmentSpec env = QuadrantAdvisor::Calibrate(LabEnv());
  EXPECT_GT(env.scan_throughput, 1e6);
  EXPECT_GT(env.gain_throughput, 1e6);
}

TEST(AdvisorTest, RankIsTotalOrderOverFourQuadrants) {
  QuadrantAdvisor advisor(LabEnv());
  const auto ranking = advisor.Rank(MakeWorkload(50000, 5000, 2, 0.02));
  ASSERT_EQ(ranking.size(), 4u);
  for (size_t i = 1; i < ranking.size(); ++i) {
    if (ranking[i - 1].fits_memory == ranking[i].fits_memory) {
      EXPECT_LE(ranking[i - 1].total_seconds(), ranking[i].total_seconds());
    }
  }
}

}  // namespace
}  // namespace vero
