// Full-pipeline integration test: the complete downstream-user path —
// dataset on disk (LIBSVM) -> loaded -> distributed Vero training ->
// model on disk -> reloaded -> predictions — with quality and consistency
// checks at every hop.

#include <cstdio>
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/model_io.h"
#include "data/libsvm_io.h"
#include "data/synthetic.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

TEST(PipelineTest, DiskToDistributedModelToPredictions) {
  // 1. Materialize a dataset on disk.
  SyntheticConfig config;
  config.num_instances = 3000;
  config.num_features = 40;
  config.num_classes = 2;
  config.density = 0.4;
  config.seed = 91;
  const Dataset original = GenerateSynthetic(config);
  const std::string data_path = ::testing::TempDir() + "/pipeline.libsvm";
  ASSERT_TRUE(WriteLibsvmFile(original, data_path).ok());

  // 2. Load it back the way a user would.
  LibsvmReadOptions read;
  read.task = Task::kBinary;
  read.num_features = original.num_features();
  auto loaded = ReadLibsvmFile(data_path, read);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_instances(), original.num_instances());

  // 3. Train Vero on a 4-worker simulated cluster with a holdout.
  const auto [train, valid] = loaded->SplitTail(0.2);
  DistTrainOptions options;
  options.params.num_trees = 10;
  options.params.num_layers = 5;
  Cluster cluster(4);
  const DistResult result =
      TrainDistributed(cluster, train, Quadrant::kQD4, options, &valid);
  const double trained_auc = EvaluateModel(result.model, valid).value;
  EXPECT_GT(trained_auc, 0.6);

  // 4. Persist and reload the model.
  const std::string model_path = ::testing::TempDir() + "/pipeline.model";
  ASSERT_TRUE(SaveModel(result.model, model_path).ok());
  auto reloaded = LoadModel(model_path);
  ASSERT_TRUE(reloaded.ok());

  // 5. Reloaded predictions must match bit-for-bit.
  const auto a = result.model.PredictDatasetMargins(valid);
  const auto b = reloaded->PredictDatasetMargins(valid);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);

  // 6. Probabilities are calibrated into [0, 1] and order-consistent with
  //    margins.
  const CsrMatrix& vm = valid.matrix();
  for (InstanceId i = 0; i < std::min<InstanceId>(100, valid.num_instances());
       ++i) {
    double proba = 0.0;
    reloaded->PredictProba(vm.RowFeatures(i), vm.RowValues(i), &proba);
    EXPECT_GE(proba, 0.0);
    EXPECT_LE(proba, 1.0);
    EXPECT_EQ(proba > 0.5, a[i] > 0.0);
  }

  std::remove(data_path.c_str());
  std::remove(model_path.c_str());
}

TEST(PipelineTest, MultiClassRoundTripKeepsAccuracy) {
  SyntheticConfig config;
  config.num_instances = 2000;
  config.num_features = 25;
  config.num_classes = 6;
  config.density = 0.5;
  config.seed = 93;
  const Dataset data = GenerateSynthetic(config);
  const std::string data_path = ::testing::TempDir() + "/pipeline_mc.libsvm";
  ASSERT_TRUE(WriteLibsvmFile(data, data_path).ok());
  LibsvmReadOptions read;
  read.task = Task::kMultiClass;
  read.num_classes = 6;
  read.num_features = data.num_features();
  auto loaded = ReadLibsvmFile(data_path, read);
  ASSERT_TRUE(loaded.ok());

  DistTrainOptions options;
  options.params.num_trees = 6;
  options.params.num_layers = 4;
  Cluster cluster(3);
  const DistResult result =
      TrainDistributed(cluster, *loaded, Quadrant::kQD4, options);
  const double acc = EvaluateModel(result.model, *loaded).value;
  EXPECT_GT(acc, 1.0 / 6);

  const std::string model_path = ::testing::TempDir() + "/pipeline_mc.model";
  ASSERT_TRUE(SaveModel(result.model, model_path).ok());
  auto reloaded = LoadModel(model_path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_DOUBLE_EQ(EvaluateModel(*reloaded, *loaded).value, acc);
  std::remove(data_path.c_str());
  std::remove(model_path.c_str());
}

TEST(PipelineTest, TrainOnOneClusterSizeScoreAnywhere) {
  // A model trained with W=6 must behave identically to one trained with
  // W=1 (quadrant invariance) and be usable without any cluster at all.
  SyntheticConfig config;
  config.num_instances = 900;
  config.num_features = 15;
  config.seed = 95;
  const Dataset data = GenerateSynthetic(config);
  DistTrainOptions options;
  options.params.num_trees = 4;
  options.params.num_layers = 4;
  Cluster c6(6), c1(1);
  const GbdtModel w6 =
      TrainDistributed(c6, data, Quadrant::kQD4, options).model;
  const GbdtModel w1 =
      TrainDistributed(c1, data, Quadrant::kQD4, options).model;
  const auto m6 = w6.PredictDatasetMargins(data);
  const auto m1 = w1.PredictDatasetMargins(data);
  ASSERT_EQ(m6.size(), m1.size());
  for (size_t i = 0; i < m6.size(); ++i) {
    // Different worker counts change the distributed sketch merge order
    // slightly, so allow quantization-level differences only.
    EXPECT_NEAR(m6[i], m1[i], 0.5) << i;
  }
  // Both beat chance comfortably.
  EXPECT_GT(EvaluateMargins(Task::kBinary, 2, data.labels(), m6).value, 0.6);
  EXPECT_GT(EvaluateMargins(Task::kBinary, 2, data.labels(), m1).value, 0.6);
}

}  // namespace
}  // namespace vero
