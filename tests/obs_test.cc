// Observability layer: metrics registry merge semantics, trace span
// nesting/attribution, and the acceptance properties of a traced run —
// phase span sums match the TreeCost model exactly, collective spans
// account for every byte, the trace is deterministic across identical
// seeded runs, and attaching an observer never perturbs the simulation.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <gtest/gtest.h>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "data/synthetic.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "quadrants/train_distributed.h"

namespace vero {
namespace {

using obs::MetricKind;
using obs::MetricsRegistry;
using obs::MetricsShard;
using obs::MetricsSnapshot;
using obs::ObsOptions;
using obs::PhaseSpan;
using obs::RunObserver;
using obs::TraceBuffer;
using obs::TraceEvent;
using obs::TraceRecorder;

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 6, uint32_t layers = 4) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

// ---------------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersSumAcrossShards) {
  MetricsRegistry registry;
  MetricsShard* a = registry.CreateShard();
  MetricsShard* b = registry.CreateShard();
  a->counter("comm.bytes")->Add(100);
  a->counter("comm.bytes")->Add(20);
  b->counter("comm.bytes")->Add(3);
  b->counter("comm.ops")->Increment();

  const MetricsSnapshot merged = registry.Merged();
  EXPECT_EQ(merged.CounterValue("comm.bytes"), 123u);
  EXPECT_EQ(merged.CounterValue("comm.ops"), 1u);
  EXPECT_EQ(merged.CounterValue("no.such.metric"), 0u);
}

TEST(MetricsTest, GaugeKeepsMaxAcrossShards) {
  MetricsRegistry registry;
  MetricsShard* a = registry.CreateShard();
  MetricsShard* b = registry.CreateShard();
  a->gauge("pool.peak")->SetMax(10.0);
  a->gauge("pool.peak")->SetMax(4.0);  // Lower: ignored.
  b->gauge("pool.peak")->SetMax(7.0);

  const MetricsSnapshot merged = registry.Merged();
  const MetricsSnapshot::Entry* e = merged.Find("pool.peak");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kGauge);
  EXPECT_DOUBLE_EQ(e->gauge, 10.0);
}

TEST(MetricsTest, HistogramMergesDistribution) {
  MetricsRegistry registry;
  MetricsShard* a = registry.CreateShard();
  MetricsShard* b = registry.CreateShard();
  a->histogram("latency")->Observe(0.5);
  a->histogram("latency")->Observe(1.5);
  b->histogram("latency")->Observe(0.25);

  const MetricsSnapshot merged = registry.Merged();
  const MetricsSnapshot::Entry* e = merged.Find("latency");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->kind, MetricKind::kHistogram);
  EXPECT_EQ(e->count, 3u);
  EXPECT_DOUBLE_EQ(e->sum, 2.25);
  EXPECT_DOUBLE_EQ(e->min, 0.25);
  EXPECT_DOUBLE_EQ(e->max, 1.5);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.CreateShard();
  shard->counter("zebra")->Increment();
  shard->gauge("alpha")->Set(1.0);
  shard->histogram("mid")->Observe(1.0);

  const MetricsSnapshot merged = registry.Merged();
  ASSERT_EQ(merged.entries.size(), 3u);
  for (size_t i = 1; i < merged.entries.size(); ++i) {
    EXPECT_LT(merged.entries[i - 1].name, merged.entries[i].name);
  }
}

TEST(MetricsTest, ResetZeroesEveryCellButKeepsHandles) {
  MetricsRegistry registry;
  MetricsShard* shard = registry.CreateShard();
  obs::Counter* c = shard->counter("c");
  obs::Gauge* g = shard->gauge("g");
  obs::HistogramMetric* h = shard->histogram("h");
  c->Add(5);
  g->Set(2.0);
  h->Observe(3.0);

  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_FALSE(g->is_set());
  EXPECT_EQ(h->count(), 0u);
  EXPECT_DOUBLE_EQ(h->min(), 0.0);

  // Handles stay live: writes after Reset land in the same cells.
  c->Increment();
  EXPECT_EQ(registry.Merged().CounterValue("c"), 1u);
}

// ---------------------------------------------------------------------------
// Trace spans.
// ---------------------------------------------------------------------------

TEST(TraceTest, NestedSpansRecordChildrenFirstWithContext) {
  TraceRecorder recorder;
  TraceBuffer* buffer = recorder.CreateBuffer(2);
  double sim = 1.0;

  buffer->SetContext(3, -1);
  {
    PhaseSpan outer(buffer, "outer", &sim);
    buffer->SetContext(3, 1);
    {
      PhaseSpan inner(buffer, "inner", &sim);
      sim = 2.5;  // Simulated clock advances inside the inner span.
    }
    buffer->SetContext(3, -1);
  }

  const std::vector<TraceEvent> events = recorder.MergedEvents();
  ASSERT_EQ(events.size(), 2u);
  // Inner closes (and records) before outer: children precede parents.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_EQ(events[0].rank, 2);
  EXPECT_EQ(events[0].tree, 3);
  EXPECT_EQ(events[0].layer, 1);
  EXPECT_EQ(events[1].layer, -1);
  EXPECT_DOUBLE_EQ(events[0].sim_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(events[0].sim_end_s, 2.5);
  EXPECT_DOUBLE_EQ(events[1].sim_begin_s, 1.0);
  EXPECT_DOUBLE_EQ(events[1].sim_end_s, 2.5);
  EXPECT_LE(events[1].wall_begin_us, events[0].wall_begin_us);
  EXPECT_GE(events[1].wall_end_us, events[0].wall_end_us);
}

TEST(TraceTest, CloseReturnsCpuSecondsAndRecordsOnce) {
  TraceRecorder recorder;
  TraceBuffer* buffer = recorder.CreateBuffer(0);
  PhaseSpan span(buffer, "work");
  // Burn a little CPU so the measurement is visibly non-negative.
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) sink = sink + i * 0.5;
  const double first = span.Close();
  const double second = span.Close();  // Idempotent: no second event.
  EXPECT_GE(first, 0.0);
  EXPECT_GE(second, first);
  EXPECT_EQ(recorder.event_count(), 1u);
  // No sim clock was supplied: sim stamps stay at the -1 sentinel.
  EXPECT_DOUBLE_EQ(recorder.MergedEvents()[0].sim_begin_s, -1.0);
}

TEST(TraceTest, NullBufferSpanStillMeasures) {
  PhaseSpan span(nullptr, "unrecorded");
  EXPECT_GE(span.Close(), 0.0);
}

TEST(TraceTest, ChromeJsonExportShape) {
  TraceRecorder recorder;
  TraceBuffer* worker = recorder.CreateBuffer(1);
  TraceBuffer* driver = recorder.CreateBuffer(-1);
  { PhaseSpan span(worker, "phase-a"); }
  {
    PhaseSpan span(driver, "recovery");
    span.set_category("driver");
  }

  std::ostringstream os;
  recorder.ExportChromeJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"phase-a\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Balanced container tokens (cheap structural sanity; the schema checker
  // in scripts/check_trace.py parses it for real).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonWriterTest, EscapesAndPlacesCommas) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.BeginObject();
  w.Key("a\"b");
  w.String("x\n\t\\");
  w.Key("n");
  w.Int(-3);
  w.Key("arr");
  w.BeginArray();
  w.UInt(1);
  w.Bool(true);
  w.Double(0.5);
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(os.str(), "{\"a\\\"b\":\"x\\n\\t\\\\\",\"n\":-3,"
                      "\"arr\":[1,true,0.5]}");
}

TEST(LoggingTest, FormatLogPrefixCarriesRank) {
  EXPECT_EQ(internal::FormatLogPrefix(LogLevel::kInfo, "a/b/file.cc", 12, 3),
            "[I rk3 file.cc:12] ");
  EXPECT_EQ(internal::FormatLogPrefix(LogLevel::kWarning, "x.cc", 7, -1),
            "[W x.cc:7] ");
}

// ---------------------------------------------------------------------------
// End-to-end: traced training runs on every quadrant.
// ---------------------------------------------------------------------------

struct TracedRun {
  DistResult result;
  std::vector<TraceEvent> events;
  MetricsSnapshot metrics;
  CommStats total_stats;
};

TracedRun RunTraced(const Dataset& data, Quadrant quadrant,
                    const DistTrainOptions& options, int workers) {
  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster cluster(workers);
  cluster.AttachObserver(&observer);
  TracedRun run;
  run.result = TrainDistributed(cluster, data, quadrant, options);
  run.events = observer.trace().MergedEvents();
  run.metrics = observer.metrics().Merged();
  run.total_stats = cluster.TotalStats();
  return run;
}

class ObsQuadrantTest : public ::testing::TestWithParam<Quadrant> {};

// The acceptance property: the trace is not a parallel estimate of the cost
// model, it is the *same* measurement. Per-tree phase CPU (max across ranks
// of the per-rank span sums) must equal TreeCost exactly, collective span
// sim-time must telescope to comm_seconds, and collective span bytes must
// account for every byte in train_bytes_sent.
TEST_P(ObsQuadrantTest, TraceSpansMatchTreeCostModel) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(900, 20, 311);
  const DistTrainOptions options = SmallOptions();
  const int workers = 4;

  const TracedRun run = RunTraced(data, quadrant, options, workers);
  ASSERT_TRUE(run.result.status.ok()) << run.result.status.ToString();
  const std::vector<TreeCost>& costs = run.result.tree_costs;
  ASSERT_EQ(costs.size(), options.params.num_trees);

  // (tree, rank) -> per-phase CPU sums / comm sim seconds; tree -> bytes.
  struct PerRank {
    std::map<std::string, double> phase_cpu;
    double comm_sim = 0.0;
  };
  std::map<std::pair<int32_t, int>, PerRank> per_rank;
  std::map<int32_t, uint64_t> tree_bytes;
  uint64_t train_span_bytes = 0;
  for (const TraceEvent& e : run.events) {
    if (e.tree < 0) continue;
    PerRank& pr = per_rank[{e.tree, e.rank}];
    if (std::string_view(e.category) == "collective") {
      pr.comm_sim += e.sim_end_s - e.sim_begin_s;
      tree_bytes[e.tree] += e.bytes;
      train_span_bytes += e.bytes;
    } else {
      pr.phase_cpu[e.name] += e.cpu_seconds;
    }
  }

  for (uint32_t t = 0; t < costs.size(); ++t) {
    std::map<std::string, double> max_cpu;
    double max_comm = 0.0;
    for (int r = 0; r < workers; ++r) {
      const auto it = per_rank.find({static_cast<int32_t>(t), r});
      ASSERT_NE(it, per_rank.end()) << "tree " << t << " rank " << r;
      for (const auto& [name, cpu] : it->second.phase_cpu) {
        max_cpu[name] = std::max(max_cpu[name], cpu);
      }
      max_comm = std::max(max_comm, it->second.comm_sim);
    }
    // Phase CPU: InstrumentMax over the very doubles Close() returned, so
    // equality is exact, not approximate.
    EXPECT_DOUBLE_EQ(max_cpu["gradient"], costs[t].gradient_seconds)
        << "tree " << t;
    EXPECT_DOUBLE_EQ(max_cpu["hist-build"], costs[t].hist_seconds)
        << "tree " << t;
    EXPECT_DOUBLE_EQ(max_cpu["find-split"], costs[t].find_split_seconds)
        << "tree " << t;
    EXPECT_DOUBLE_EQ(max_cpu["node-split"], costs[t].node_split_seconds)
        << "tree " << t;
    EXPECT_DOUBLE_EQ(max_cpu["margin-update"], costs[t].other_seconds)
        << "tree " << t;
    // Sim time only advances inside collectives, so the per-tree span sum
    // telescopes to the tree's comm window (up to double summation order).
    EXPECT_NEAR(max_comm, costs[t].comm_seconds,
                1e-9 * (1.0 + costs[t].comm_seconds))
        << "tree " << t;
    // Byte deltas are integers: the spans account for every byte exactly.
    EXPECT_EQ(tree_bytes[static_cast<int32_t>(t)], costs[t].bytes_sent)
        << "tree " << t;
  }
  EXPECT_EQ(train_span_bytes, run.result.train_bytes_sent);

  // Registry invariant: the per-op counters decompose the CommStats totals.
  const char* kOps[] = {"AllReduceSum", "ReduceScatterSum", "AllGather",
                        "Broadcast",    "Gather",           "AllToAll",
                        "Barrier"};
  uint64_t op_bytes = 0;
  uint64_t op_count = 0;
  for (const char* op : kOps) {
    op_bytes +=
        run.metrics.CounterValue(std::string("comm.") + op + ".bytes_sent");
    op_count += run.metrics.CounterValue(std::string("comm.") + op + ".ops");
  }
  EXPECT_EQ(op_bytes, run.total_stats.bytes_sent);
  EXPECT_EQ(op_count, run.total_stats.num_ops);

  // Run report: filled, and consistent with the result it summarizes.
  const obs::RunReport& report = run.result.report;
  EXPECT_TRUE(report.enabled);
  EXPECT_EQ(report.quadrant, QuadrantToString(quadrant));
  EXPECT_EQ(report.workers, workers);
  EXPECT_EQ(report.trees, options.params.num_trees);
  EXPECT_DOUBLE_EQ(report.train_seconds, run.result.TrainSeconds());
  EXPECT_DOUBLE_EQ(report.comp_seconds, run.result.TotalCompSeconds());
  EXPECT_DOUBLE_EQ(report.comm_seconds, run.result.TotalCommSeconds());
  EXPECT_EQ(report.train_bytes_sent, run.result.train_bytes_sent);
  EXPECT_EQ(report.peak_histogram_bytes, run.result.peak_histogram_bytes);
  EXPECT_EQ(report.wasted_bytes, 0u);
  EXPECT_DOUBLE_EQ(report.wasted_seconds, 0.0);
  EXPECT_FALSE(report.metrics.entries.empty());
  const double phase_sum = report.phases.gradient + report.phases.hist +
                           report.phases.find_split +
                           report.phases.node_split + report.phases.other;
  EXPECT_NEAR(phase_sum, report.comp_seconds,
              1e-9 * (1.0 + report.comp_seconds));
  EXPECT_NEAR(report.phases.comm, report.comm_seconds,
              1e-12 * (1.0 + report.comm_seconds));

  // The report serializes under the stable v1 schema.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"schema\":\"vero.run_report.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
}

INSTANTIATE_TEST_SUITE_P(AllQuadrants, ObsQuadrantTest,
                         ::testing::Values(Quadrant::kQD1, Quadrant::kQD2,
                                           Quadrant::kQD3, Quadrant::kQD4));

// Two identical seeded runs must produce traces identical in every
// deterministic field (wall / CPU stamps are explicitly excluded).
TEST(ObsDeterminismTest, TraceSchemaStableAcrossSeededRuns) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(700, 18, 421);
  const DistTrainOptions options = SmallOptions(4, 4);

  const TracedRun a = RunTraced(data, Quadrant::kQD4, options, 4);
  const TracedRun b = RunTraced(data, Quadrant::kQD4, options, 4);
  ASSERT_TRUE(a.result.status.ok());
  ASSERT_TRUE(b.result.status.ok());

  ASSERT_EQ(a.events.size(), b.events.size());
  ASSERT_GT(a.events.size(), 0u);
  for (size_t i = 0; i < a.events.size(); ++i) {
    const TraceEvent& ea = a.events[i];
    const TraceEvent& eb = b.events[i];
    EXPECT_STREQ(ea.name, eb.name) << "event " << i;
    EXPECT_STREQ(ea.category, eb.category) << "event " << i;
    EXPECT_EQ(ea.rank, eb.rank) << "event " << i;
    EXPECT_EQ(ea.tree, eb.tree) << "event " << i;
    EXPECT_EQ(ea.layer, eb.layer) << "event " << i;
    EXPECT_DOUBLE_EQ(ea.sim_begin_s, eb.sim_begin_s) << "event " << i;
    EXPECT_DOUBLE_EQ(ea.sim_end_s, eb.sim_end_s) << "event " << i;
    EXPECT_EQ(ea.bytes, eb.bytes) << "event " << i;
    EXPECT_EQ(ea.op_id, eb.op_id) << "event " << i;
    EXPECT_EQ(ea.incarnation, eb.incarnation) << "event " << i;
  }

  // Metric snapshots agree on every deterministic (integer) cell.
  ASSERT_EQ(a.metrics.entries.size(), b.metrics.entries.size());
  for (size_t i = 0; i < a.metrics.entries.size(); ++i) {
    EXPECT_EQ(a.metrics.entries[i].name, b.metrics.entries[i].name);
    EXPECT_EQ(a.metrics.entries[i].counter, b.metrics.entries[i].counter);
  }
}

// Acceptance bit-identity: an attached observer (tracing on) must not
// change a single byte or simulated second of the run.
TEST(ObsBitIdenticalTest, ObserverDoesNotPerturbAccounting) {
  const Dataset data = MakeData(800, 20, 521);
  const DistTrainOptions options = SmallOptions(4, 4);

  Cluster plain(4);
  const DistResult base =
      TrainDistributed(plain, data, Quadrant::kQD2, options);
  ASSERT_TRUE(base.status.ok());

  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster observed(4);
  observed.AttachObserver(&observer);
  const DistResult traced =
      TrainDistributed(observed, data, Quadrant::kQD2, options);
  ASSERT_TRUE(traced.status.ok());

  EXPECT_EQ(traced.train_bytes_sent, base.train_bytes_sent);
  EXPECT_EQ(traced.peak_histogram_bytes, base.peak_histogram_bytes);
  for (int r = 0; r < 4; ++r) {
    const CommStats& sp = plain.worker_stats(r);
    const CommStats& so = observed.worker_stats(r);
    EXPECT_EQ(so.bytes_sent, sp.bytes_sent) << "rank " << r;
    EXPECT_EQ(so.bytes_received, sp.bytes_received) << "rank " << r;
    EXPECT_EQ(so.num_ops, sp.num_ops) << "rank " << r;
    EXPECT_EQ(so.sim_seconds, sp.sim_seconds) << "rank " << r;
  }
  EXPECT_EQ(observed.MaxSimSeconds(), plain.MaxSimSeconds());
  ASSERT_EQ(traced.tree_costs.size(), base.tree_costs.size());
  for (size_t t = 0; t < base.tree_costs.size(); ++t) {
    EXPECT_EQ(traced.tree_costs[t].bytes_sent, base.tree_costs[t].bytes_sent);
    EXPECT_EQ(traced.tree_costs[t].comm_seconds,
              base.tree_costs[t].comm_seconds);
  }
}

// Metrics-only observer: no trace buffers exist, but shards still count.
TEST(ObsDisabledTraceTest, MetricsWithoutTraceBuffers) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(600, 15, 601);
  RunObserver observer;  // trace defaults to off
  EXPECT_FALSE(observer.trace_enabled());
  EXPECT_EQ(observer.driver_buffer(), nullptr);

  Cluster cluster(3);
  cluster.AttachObserver(&observer);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD1, SmallOptions(3, 3));
  ASSERT_TRUE(result.status.ok());

  EXPECT_EQ(observer.trace().event_count(), 0u);
  const MetricsSnapshot merged = observer.metrics().Merged();
  EXPECT_GT(merged.CounterValue("comm.AllReduceSum.ops"), 0u);
  EXPECT_TRUE(result.report.enabled);
  EXPECT_TRUE(result.report.trace_path.empty());
}

// ---------------------------------------------------------------------------
// Goodput accounting under failures.
// ---------------------------------------------------------------------------

// A crash with no checkpoint degrades to a full restart: everything the
// first attempt trained (plus its setup) is wasted, and the report says so.
TEST(ObsGoodputTest, FailedAttemptWorkIsCountedAsWasted) {
  const Dataset data = MakeData(900, 20, 701);
  const DistTrainOptions options = SmallOptions(6, 4);

  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, data, Quadrant::kQD2, options);
  ASSERT_TRUE(base.status.ok());
  EXPECT_EQ(base.wasted_bytes, 0u);
  EXPECT_DOUBLE_EQ(base.wasted_seconds, 0.0);
  const uint64_t total_ops = clean.worker_stats(2).num_ops;

  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster faulted(4);
  faulted.AttachObserver(&observer);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, (3 * total_ops) / 4));
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD2, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  // No checkpoint: every tree of the failed attempt was thrown away. The
  // DistResult goodput counters hold regardless of the obs build mode.
  EXPECT_EQ(result.recovery.trees_recovered, 0u);
  EXPECT_GT(result.wasted_bytes, 0u);
  EXPECT_GT(result.wasted_seconds, 0.0);
  if (!obs::kObsEnabled) return;  // Report/metrics need the obs build.

  const obs::RunReport& report = result.report;
  EXPECT_EQ(report.wasted_bytes, result.wasted_bytes);
  EXPECT_DOUBLE_EQ(report.wasted_seconds, result.wasted_seconds);
  EXPECT_EQ(report.recovery.failures_observed, 1);
  EXPECT_EQ(report.recovery.recovery_attempts, 1);
  EXPECT_EQ(report.recovery.final_world_size, 3);

  const MetricsSnapshot metrics = observer.metrics().Merged();
  EXPECT_EQ(metrics.CounterValue("recovery.failures_observed"), 1u);
  EXPECT_EQ(metrics.CounterValue("recovery.attempts"), 1u);
  EXPECT_GT(metrics.CounterValue("recovery.redistribution_bytes"), 0u);

  // The trace saw the driver's recovery span.
  bool saw_recovery_span = false;
  for (const TraceEvent& e : observer.trace().MergedEvents()) {
    if (std::string_view(e.name) == "recovery" &&
        std::string_view(e.category) == "driver") {
      saw_recovery_span = true;
    }
  }
  EXPECT_TRUE(saw_recovery_span);
}

// Checkpointed recovery records checkpoint metrics and keeps the waste to
// the uncheckpointed suffix.
TEST(ObsGoodputTest, CheckpointMetricsRecorded) {
  const Dataset data = MakeData(900, 20, 711);
  DistTrainOptions options = SmallOptions(6, 4);
  options.checkpoint.interval = 2;

  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, data, Quadrant::kQD1, options);
  ASSERT_TRUE(base.status.ok());
  const uint64_t total_ops = clean.worker_stats(1).num_ops;

  RunObserver observer;
  Cluster faulted(4);
  faulted.AttachObserver(&observer);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(1, CollectiveOp::kAny, (3 * total_ops) / 4));
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD1, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_GT(result.recovery.trees_recovered, 0u);
  if (!obs::kObsEnabled) return;  // Metric checks need the obs build.

  const MetricsSnapshot metrics = observer.metrics().Merged();
  EXPECT_GT(metrics.CounterValue("checkpoint.count"), 0u);
  EXPECT_GT(metrics.CounterValue("checkpoint.bytes"), 0u);
  const MetricsSnapshot::Entry* latency =
      metrics.Find("checkpoint.latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->count, metrics.CounterValue("checkpoint.count"));
}

// ---------------------------------------------------------------------------
// Emitter fixtures for scripts/check_trace.py (--emitter mode runs this
// binary with --gtest_filter=ObsEmit* and VERO_OBS_EMIT_DIR set, then
// validates the emitted files against the documented schemas).
// ---------------------------------------------------------------------------

std::string EmitDir() {
  const char* dir = std::getenv("VERO_OBS_EMIT_DIR");
  return dir != nullptr ? std::string(dir) : ::testing::TempDir();
}

TEST(ObsEmitTest, WritesTraceAndReportJson) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "built with VERO_DISABLE_OBS";
  const Dataset data = MakeData(700, 18, 801);
  const DistTrainOptions options = SmallOptions(4, 4);

  ObsOptions obs_options;
  obs_options.trace = true;
  RunObserver observer(obs_options);
  Cluster cluster(4);
  cluster.AttachObserver(&observer);
  DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD4, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  const std::string dir = EmitDir();
  const std::string trace_path = dir + "/trace.json";
  const std::string report_path = dir + "/report.json";
  ASSERT_TRUE(observer.trace().WriteChromeJson(trace_path).ok());
  result.report.label = "obs_emit_test";
  result.report.trace_path = trace_path;
  {
    std::ofstream out(report_path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(out));
    out << result.report.ToJson() << "\n";
  }

  std::ifstream trace_in(trace_path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(trace_in));
  std::stringstream trace_ss;
  trace_ss << trace_in.rdbuf();
  EXPECT_NE(trace_ss.str().find("\"traceEvents\""), std::string::npos);

  std::ifstream report_in(report_path, std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(report_in));
  std::stringstream report_ss;
  report_ss << report_in.rdbuf();
  EXPECT_NE(report_ss.str().find("\"vero.run_report.v1\""),
            std::string::npos);
}

}  // namespace
}  // namespace vero
