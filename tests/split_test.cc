#include "core/split.h"

#include <gtest/gtest.h>

#include "common/serialize.h"

namespace vero {
namespace {

// One feature, three bins, binary task. Gradients arranged so that
// splitting after bin 0 is clearly best.
CandidateSplits MakeSplits() {
  return CandidateSplits(3, {{1.0f, 2.0f, 3.0f}});
}

TEST(SplitFinderTest, FindsHandComputableSplit) {
  // Bin 0: g=-10,h=5; bin 1: g=+10,h=5; bin 2: g=0,h=0.
  Histogram hist(1, 3, 1);
  GradPair neg{-10.0, 5.0}, pos{10.0, 5.0};
  hist.Add(0, 0, &neg);
  hist.Add(0, 1, &pos);
  GradStats node = {{0.0, 10.0}};

  SplitFinder finder(/*lambda=*/1.0, /*gamma=*/0.0, /*min_gain=*/0.0);
  const SplitCandidate best =
      finder.FindBest(hist, node, {0}, MakeSplits());
  ASSERT_TRUE(best.valid);
  EXPECT_EQ(best.feature, 0u);
  EXPECT_EQ(best.split_bin, 0);
  EXPECT_EQ(best.split_value, 1.0f);
  // gain = 0.5 * (100/6 + 100/6 - 0/11).
  EXPECT_NEAR(best.gain, 0.5 * (100.0 / 6 + 100.0 / 6), 1e-9);
  EXPECT_DOUBLE_EQ(best.left_stats[0].g, -10.0);
  EXPECT_DOUBLE_EQ(best.right_stats[0].g, 10.0);
}

TEST(SplitFinderTest, GammaSubtractsFromGain) {
  Histogram hist(1, 3, 1);
  GradPair neg{-10.0, 5.0}, pos{10.0, 5.0};
  hist.Add(0, 0, &neg);
  hist.Add(0, 1, &pos);
  GradStats node = {{0.0, 10.0}};
  SplitFinder finder(1.0, /*gamma=*/2.0, 0.0);
  const SplitCandidate best =
      finder.FindBest(hist, node, {0}, MakeSplits());
  EXPECT_NEAR(best.gain, 0.5 * (100.0 / 6 + 100.0 / 6) - 2.0, 1e-9);
}

TEST(SplitFinderTest, MinGainFiltersWeakSplits) {
  Histogram hist(1, 3, 1);
  GradPair a{-0.1, 5.0}, b{0.1, 5.0};
  hist.Add(0, 0, &a);
  hist.Add(0, 1, &b);
  GradStats node = {{0.0, 10.0}};
  SplitFinder finder(1.0, 0.0, /*min_gain=*/1.0);
  EXPECT_FALSE(finder.FindBest(hist, node, {0}, MakeSplits()).valid);
}

TEST(SplitFinderTest, MissingValuesPickBetterDefaultSide) {
  // Present mass: bin 0 has g=-10 (wants to isolate); missing mass g=+8.
  Histogram hist(1, 3, 1);
  GradPair neg{-10.0, 5.0};
  hist.Add(0, 0, &neg);
  GradStats node = {{-2.0, 9.0}};  // Missing: g=8, h=4.
  SplitFinder finder(1.0, 0.0, 0.0);
  const SplitCandidate best =
      finder.FindBest(hist, node, {0}, MakeSplits());
  ASSERT_TRUE(best.valid);
  // Sending missing right separates -10 from +8 cleanly.
  EXPECT_FALSE(best.default_left);
  EXPECT_DOUBLE_EQ(best.left_stats[0].g, -10.0);
  EXPECT_DOUBLE_EQ(best.right_stats[0].g, 8.0);
}

TEST(SplitFinderTest, SkipsConstantFeatures) {
  Histogram hist(1, 3, 1);
  GradPair g{1.0, 1.0};
  hist.Add(0, 0, &g);
  GradStats node = {{1.0, 1.0}};
  CandidateSplits one_bin(3, {{5.0f}});
  SplitFinder finder(1.0, 0.0, 0.0);
  EXPECT_FALSE(finder.FindBest(hist, node, {0}, one_bin).valid);
}

TEST(SplitFinderTest, MultiClassGainSumsOverClasses) {
  Histogram hist(1, 2, 2);
  GradPair bin0[2] = {{-5.0, 2.0}, {5.0, 2.0}};
  GradPair bin1[2] = {{5.0, 2.0}, {-5.0, 2.0}};
  hist.Add(0, 0, bin0);
  hist.Add(0, 1, bin1);
  GradStats node = {{0.0, 4.0}, {0.0, 4.0}};
  CandidateSplits splits(2, {{1.0f, 2.0f}});
  SplitFinder finder(1.0, 0.0, 0.0);
  const SplitCandidate best = finder.FindBest(hist, node, {0}, splits);
  ASSERT_TRUE(best.valid);
  // Per class: 25/3 left + 25/3 right; parent 0. Two classes.
  EXPECT_NEAR(best.gain, 0.5 * 4 * (25.0 / 3), 1e-9);
}

TEST(SplitFinderTest, LeafWeightsFormula) {
  SplitFinder finder(1.0, 0.0, 0.0);
  const std::vector<float> w = finder.LeafWeights({{4.0, 3.0}, {-2.0, 1.0}});
  ASSERT_EQ(w.size(), 2u);
  EXPECT_FLOAT_EQ(w[0], -1.0f);  // -4 / (3+1)
  EXPECT_FLOAT_EQ(w[1], 1.0f);   // 2 / (1+1)
}

TEST(SplitCandidateTest, OrderingPrefersHigherGain) {
  SplitCandidate a, b;
  a.valid = b.valid = true;
  a.gain = 2.0;
  b.gain = 1.0;
  EXPECT_TRUE(a.IsBetterThan(b));
  EXPECT_FALSE(b.IsBetterThan(a));
}

TEST(SplitCandidateTest, TieBreaksByFeatureThenBin) {
  SplitCandidate a, b;
  a.valid = b.valid = true;
  a.gain = b.gain = 1.0;
  a.feature = 2;
  b.feature = 5;
  EXPECT_TRUE(a.IsBetterThan(b));
  b.feature = 2;
  a.split_bin = 1;
  b.split_bin = 3;
  EXPECT_TRUE(a.IsBetterThan(b));
}

TEST(SplitCandidateTest, InvalidNeverWins) {
  SplitCandidate invalid, valid;
  valid.valid = true;
  valid.gain = -5.0;
  EXPECT_FALSE(invalid.IsBetterThan(valid));
  EXPECT_TRUE(valid.IsBetterThan(invalid));
  EXPECT_FALSE(invalid.IsBetterThan(invalid));
}

TEST(SplitCandidateTest, SerializeRoundTrip) {
  SplitCandidate s;
  s.valid = true;
  s.feature = 17;
  s.split_bin = 3;
  s.split_value = 2.5f;
  s.default_left = true;
  s.gain = 4.75;
  s.left_stats = {{1.0, 2.0}, {3.0, 4.0}};
  s.right_stats = {{-1.0, 0.5}, {0.0, 0.25}};
  ByteWriter w;
  s.SerializeTo(&w);
  ByteReader r(w.data());
  SplitCandidate t;
  ASSERT_TRUE(SplitCandidate::Deserialize(&r, &t).ok());
  EXPECT_EQ(t.feature, 17u);
  EXPECT_EQ(t.split_bin, 3);
  EXPECT_EQ(t.split_value, 2.5f);
  EXPECT_TRUE(t.default_left);
  EXPECT_DOUBLE_EQ(t.gain, 4.75);
  EXPECT_EQ(t.left_stats.size(), 2u);
  EXPECT_DOUBLE_EQ(t.right_stats[0].h, 0.5);
}

TEST(SplitFinderTest, LeftRightStatsSumToNodeStats) {
  // Property: whatever split wins, left + right must equal the node totals.
  Histogram hist(2, 3, 1);
  GradPair g1{-3.0, 1.0}, g2{2.0, 1.5}, g3{4.0, 2.0};
  hist.Add(0, 0, &g1);
  hist.Add(0, 1, &g2);
  hist.Add(1, 2, &g3);
  GradStats node = {{3.5, 5.0}};  // Includes some missing mass.
  CandidateSplits splits(3, {{1.0f, 2.0f, 3.0f}, {1.0f, 2.0f, 3.0f}});
  SplitFinder finder(1.0, 0.0, 0.0);
  const SplitCandidate best = finder.FindBest(hist, node, {0, 1}, splits);
  ASSERT_TRUE(best.valid);
  EXPECT_NEAR(best.left_stats[0].g + best.right_stats[0].g, node[0].g, 1e-12);
  EXPECT_NEAR(best.left_stats[0].h + best.right_stats[0].h, node[0].h, 1e-12);
}

}  // namespace
}  // namespace vero
