#include "core/hist_builder.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/bitmap.h"
#include "common/random.h"
#include "core/binned.h"
#include "core/gradients.h"
#include "core/histogram.h"
#include "core/loss.h"
#include "core/model_io.h"
#include "core/node_indexer.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace vero {
namespace {

constexpr uint32_t kBins = 16;

// Sparse row store with rows sorted by feature id (the FromCsr invariant).
BinnedRowStore MakeRowStore(uint32_t n, uint32_t d, double density, Rng* rng) {
  BinnedRowStore store;
  store.set_num_features(d);
  for (uint32_t i = 0; i < n; ++i) {
    store.StartRow();
    for (uint32_t f = 0; f < d; ++f) {
      if (rng->Bernoulli(density)) {
        store.PushEntry(f, static_cast<BinId>(rng->Uniform(kBins)));
      }
    }
  }
  return store;
}

// Pivot of a row store into per-feature columns (instance ids ascend).
BinnedColumnStore Pivot(const BinnedRowStore& rows) {
  BinnedColumnStore store;
  store.set_num_rows(rows.num_rows());
  for (uint32_t f = 0; f < rows.num_features(); ++f) {
    store.StartColumn();
    for (InstanceId i = 0; i < rows.num_rows(); ++i) {
      const auto features = rows.RowFeatures(i);
      const auto bins = rows.RowBins(i);
      for (size_t k = 0; k < features.size(); ++k) {
        if (features[k] == f) store.PushEntry(i, bins[k]);
      }
    }
  }
  return store;
}

GradientBuffer MakeGrads(uint32_t n, uint32_t dims, Rng* rng) {
  GradientBuffer grads(n, dims);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t k = 0; k < dims; ++k) {
      grads.at(i, k) = {rng->NextGaussian(), rng->NextDouble() + 0.1};
    }
  }
  return grads;
}

// Seed-style per-node scan: one row at a time, every entry via Histogram::Add.
void NaiveRowScan(const BinnedRowStore& store, const GradientBuffer& grads,
                  std::span<const InstanceId> rows, Histogram* hist) {
  for (const InstanceId i : rows) {
    const auto features = store.RowFeatures(i);
    const auto bins = store.RowBins(i);
    for (size_t k = 0; k < features.size(); ++k) {
      hist->Add(features[k], bins[k], grads.row(i));
    }
  }
}

bool SameBits(const Histogram& a, const Histogram& b) {
  return a.raw_size() == b.raw_size() &&
         std::memcmp(a.raw_data(), b.raw_data(),
                     a.raw_size() * sizeof(double)) == 0;
}

// Splits instances round-robin-by-hash onto `num_nodes` frontier nodes and
// returns the per-node ascending instance lists.
std::vector<std::vector<InstanceId>> AssignNodes(uint32_t n,
                                                 uint32_t num_nodes,
                                                 Rng* rng) {
  std::vector<std::vector<InstanceId>> nodes(num_nodes);
  for (InstanceId i = 0; i < n; ++i) {
    nodes[rng->Uniform(num_nodes)].push_back(i);
  }
  return nodes;
}

TEST(HistBuilderTest, RowLayerMatchesPerNodeScans) {
  for (uint32_t dims : {1u, 3u}) {
    Rng rng(101 + dims);
    const uint32_t n = 500, d = 24;
    const BinnedRowStore store = MakeRowStore(n, d, 0.3, &rng);
    const GradientBuffer grads = MakeGrads(n, dims, &rng);
    const auto nodes = AssignNodes(n, 3, &rng);

    std::vector<Histogram> built;
    for (int k = 0; k < 3; ++k) built.emplace_back(d, kBins, dims);
    std::vector<HistogramBuilder::NodeRows> tasks;
    for (int k = 0; k < 3; ++k) {
      tasks.push_back({&built[k], std::span<const InstanceId>(nodes[k])});
    }
    HistogramBuilder builder(1);
    builder.BuildRowStoreLayer(store, grads,
                               std::span<const HistogramBuilder::NodeRows>(
                                   tasks),
                               0, d, d);

    for (int k = 0; k < 3; ++k) {
      Histogram naive(d, kBins, dims);
      NaiveRowScan(store, grads, std::span<const InstanceId>(nodes[k]),
                   &naive);
      EXPECT_TRUE(SameBits(built[k], naive)) << "dims=" << dims
                                             << " node=" << k;
    }
    EXPECT_EQ(builder.last_threads_used(), 1u);
    EXPECT_GE(builder.last_build_seconds(), 0.0);
  }
}

TEST(HistBuilderTest, RowLayerParallelBitIdenticalToSerial) {
  for (uint32_t dims : {1u, 3u}) {
    Rng rng(202 + dims);
    const uint32_t n = 700, d = 13;  // d not divisible by the thread counts.
    const BinnedRowStore store = MakeRowStore(n, d, 0.4, &rng);
    const GradientBuffer grads = MakeGrads(n, dims, &rng);
    const auto nodes = AssignNodes(n, 2, &rng);

    auto build = [&](uint32_t threads) {
      std::vector<Histogram> hists;
      for (int k = 0; k < 2; ++k) hists.emplace_back(d, kBins, dims);
      std::vector<HistogramBuilder::NodeRows> tasks;
      for (int k = 0; k < 2; ++k) {
        tasks.push_back({&hists[k], std::span<const InstanceId>(nodes[k])});
      }
      HistogramBuilder builder(threads);
      builder.BuildRowStoreLayer(
          store, grads,
          std::span<const HistogramBuilder::NodeRows>(tasks), 0, d, d);
      return hists;
    };

    const std::vector<Histogram> serial = build(1);
    for (uint32_t threads : {2u, 4u, 7u}) {
      const std::vector<Histogram> parallel = build(threads);
      for (int k = 0; k < 2; ++k) {
        EXPECT_TRUE(SameBits(serial[k], parallel[k]))
            << "dims=" << dims << " threads=" << threads << " node=" << k;
      }
    }
  }
}

TEST(HistBuilderTest, RowLayerWindowMatchesFullBuildSlice) {
  Rng rng(303);
  const uint32_t n = 400, d = 20, fb = 7, fe = 15;
  const BinnedRowStore store = MakeRowStore(n, d, 0.35, &rng);
  const GradientBuffer grads = MakeGrads(n, 1, &rng);
  std::vector<InstanceId> all(n);
  for (InstanceId i = 0; i < n; ++i) all[i] = i;

  Histogram full(d, kBins, 1);
  NaiveRowScan(store, grads, std::span<const InstanceId>(all), &full);

  auto window = [&](uint32_t threads) {
    Histogram hist(fe - fb, kBins, 1);
    std::vector<HistogramBuilder::NodeRows> tasks = {
        {&hist, std::span<const InstanceId>(all)}};
    HistogramBuilder builder(threads);
    // Histogram column f - fb holds global feature f (the feature-parallel
    // slice convention).
    builder.BuildRowStoreLayer(store, grads,
                               std::span<const HistogramBuilder::NodeRows>(
                                   tasks),
                               fb, fe, d);
    return hist;
  };

  const Histogram serial = window(1);
  for (uint32_t f = fb; f < fe; ++f) {
    for (uint32_t b = 0; b < kBins; ++b) {
      EXPECT_EQ(serial.at(f - fb, b, 0).g, full.at(f, b, 0).g);
      EXPECT_EQ(serial.at(f - fb, b, 0).h, full.at(f, b, 0).h);
    }
  }
  for (uint32_t threads : {2u, 4u, 7u}) {
    EXPECT_TRUE(SameBits(serial, window(threads))) << "threads=" << threads;
  }
}

TEST(HistBuilderTest, ColumnSweepMatchesNaiveAndIsParallelStable) {
  for (uint32_t dims : {1u, 3u}) {
    Rng rng(404 + dims);
    const uint32_t n = 600, d = 15;
    const BinnedRowStore rows = MakeRowStore(n, d, 0.3, &rng);
    const BinnedColumnStore store = Pivot(rows);
    const GradientBuffer grads = MakeGrads(n, dims, &rng);

    // Frontier nodes 1 and 2; node 0 entries stay unattributed (nullptr).
    InstanceToNode node_of;
    node_of.Init(n);
    for (InstanceId i = 0; i < n; ++i) {
      node_of.Set(i, static_cast<NodeId>(rng.Uniform(3)));
    }

    auto sweep = [&](uint32_t threads) {
      std::vector<Histogram> hists;
      for (int k = 0; k < 2; ++k) hists.emplace_back(d, kBins, dims);
      std::vector<Histogram*> hist_of_node = {nullptr, &hists[0], &hists[1]};
      HistogramBuilder builder(threads);
      builder.BuildColumnStoreSweep(store, grads, node_of, hist_of_node);
      return hists;
    };

    std::vector<Histogram> naive;
    for (int k = 0; k < 2; ++k) naive.emplace_back(d, kBins, dims);
    for (uint32_t f = 0; f < d; ++f) {
      const auto col_rows = store.ColumnRows(f);
      const auto col_bins = store.ColumnBins(f);
      for (size_t k = 0; k < col_rows.size(); ++k) {
        const NodeId node = node_of.Get(col_rows[k]);
        if (node == 0) continue;
        naive[node - 1].Add(f, col_bins[k], grads.row(col_rows[k]));
      }
    }

    const std::vector<Histogram> serial = sweep(1);
    for (int k = 0; k < 2; ++k) {
      EXPECT_TRUE(SameBits(serial[k], naive[k])) << "dims=" << dims;
    }
    for (uint32_t threads : {2u, 4u, 7u}) {
      const std::vector<Histogram> parallel = sweep(threads);
      for (int k = 0; k < 2; ++k) {
        EXPECT_TRUE(SameBits(serial[k], parallel[k]))
            << "dims=" << dims << " threads=" << threads;
      }
    }
  }
}

TEST(HistBuilderTest, ColumnLayerPoliciesAgreeBitForBit) {
  Rng rng(505);
  const uint32_t n = 500, d = 12;
  const BinnedRowStore rows = MakeRowStore(n, d, 0.4, &rng);
  const BinnedColumnStore store = Pivot(rows);
  const GradientBuffer grads = MakeGrads(n, 1, &rng);

  // One split of the root: partition + instance-to-node kept in sync, the
  // QD3 arrangement.
  RowPartition partition;
  partition.Init(n, /*max_layers=*/3);
  Bitmap go_left(n);
  for (InstanceId i = 0; i < n; ++i) go_left.Assign(i, rng.Bernoulli(0.6));
  partition.Split(0, go_left);
  InstanceToNode node_of;
  node_of.Init(n);
  for (NodeId child : {NodeId{1}, NodeId{2}}) {
    for (InstanceId i : partition.Instances(child)) node_of.Set(i, child);
  }
  const std::vector<NodeId> build_nodes = {1, 2};

  auto layer = [&](HistogramBuilder::ColumnScan policy, uint32_t threads) {
    std::vector<Histogram> hists;
    for (int k = 0; k < 2; ++k) hists.emplace_back(d, kBins, 1);
    std::vector<Histogram*> hist_of_node = {nullptr, &hists[0], &hists[1]};
    HistogramBuilder builder(threads);
    builder.BuildColumnStoreLayer(store, grads, node_of, partition,
                                  build_nodes, hist_of_node, policy);
    return hists;
  };

  const auto linear = layer(HistogramBuilder::ColumnScan::kLinear, 1);
  // Binary search visits each node's instances in partition order (ascending
  // after a stable root split) — the same per-cell order as the linear scan.
  for (auto policy : {HistogramBuilder::ColumnScan::kBinarySearch,
                      HistogramBuilder::ColumnScan::kAuto}) {
    for (uint32_t threads : {1u, 4u}) {
      const auto other = layer(policy, threads);
      for (int k = 0; k < 2; ++k) {
        EXPECT_TRUE(SameBits(linear[k], other[k]))
            << "policy=" << static_cast<int>(policy)
            << " threads=" << threads;
      }
    }
  }
}

TEST(HistBuilderTest, SubtractionPathUnchangedByRawKernels) {
  Rng rng(606);
  const uint32_t d = 6, q = 8, c = 3;
  Histogram parent(d, q, c), left(d, q, c), right_direct(d, q, c);
  for (int i = 0; i < 2000; ++i) {
    const uint32_t f = rng.Uniform(d);
    const uint32_t b = rng.Uniform(q);
    std::vector<GradPair> g(c);
    for (auto& p : g) p = {rng.NextGaussian(), rng.NextDouble()};
    parent.Add(f, b, g.data());
    (rng.Bernoulli(0.5) ? left : right_direct).Add(f, b, g.data());
  }
  Histogram right_sub(d, q, c);
  right_sub.SetToDifference(parent, left);
  // The raw-array kernel must compute exactly parent[i] - left[i] cell-wise.
  for (size_t i = 0; i < right_sub.raw_size(); ++i) {
    EXPECT_EQ(right_sub.raw_data()[i],
              parent.raw_data()[i] - left.raw_data()[i]);
  }
  // The raw-array AddHistogram kernel must compute exactly a[i] + b[i].
  Histogram sum(d, q, c);
  sum.AddHistogram(left);
  sum.AddHistogram(right_direct);
  for (size_t i = 0; i < sum.raw_size(); ++i) {
    EXPECT_EQ(sum.raw_data()[i],
              left.raw_data()[i] + right_direct.raw_data()[i]);
  }
}

TEST(HistBuilderTest, AccumulateEntriesMatchesAddLoop) {
  Rng rng(707);
  const uint32_t d = 10;
  const size_t entries = 5000;
  std::vector<FeatureId> features(entries);
  std::vector<BinId> bins(entries);
  for (size_t i = 0; i < entries; ++i) {
    features[i] = static_cast<FeatureId>(rng.Uniform(d));
    bins[i] = static_cast<BinId>(rng.Uniform(kBins));
  }
  const GradPair g{0.75, 0.25};
  Histogram fast(d, kBins, 1), naive(d, kBins, 1);
  HistogramBuilder::AccumulateEntries(&fast, features, bins, &g);
  for (size_t i = 0; i < entries; ++i) naive.Add(features[i], bins[i], &g);
  EXPECT_TRUE(SameBits(fast, naive));
}

TEST(HistBuilderTest, ThreadsUsedIsCappedByBlockCount) {
  Rng rng(808);
  const uint32_t n = 50, d = 3;
  const BinnedRowStore store = MakeRowStore(n, d, 0.5, &rng);
  const GradientBuffer grads = MakeGrads(n, 1, &rng);
  std::vector<InstanceId> all(n);
  for (InstanceId i = 0; i < n; ++i) all[i] = i;
  Histogram hist(d, kBins, 1);
  std::vector<HistogramBuilder::NodeRows> tasks = {
      {&hist, std::span<const InstanceId>(all)}};
  HistogramBuilder builder(8);
  builder.BuildRowStoreLayer(
      store, grads, std::span<const HistogramBuilder::NodeRows>(tasks), 0, d,
      d);
  // Only d=3 feature blocks exist, so at most 3 threads can be used.
  EXPECT_EQ(builder.last_threads_used(), 3u);
}

TEST(HistBuilderTest, PoolFreelistRecyclesAcrossShapes) {
  HistogramPool pool;
  Histogram* a = pool.Acquire(0, 4, kBins, 1);
  Histogram* b = pool.Acquire(1, 8, kBins, 1);
  Histogram* c = pool.Acquire(2, 4, kBins, 1);
  const uint64_t small = a->MemoryBytes();
  const uint64_t large = b->MemoryBytes();
  GradPair g{1.0, 1.0};
  a->Add(0, 0, &g);
  b->Add(0, 0, &g);
  c->Add(0, 0, &g);
  pool.Release(0);
  pool.Release(1);
  pool.Release(2);
  EXPECT_EQ(pool.CurrentBytes(), 0u);
  // Mixed-shape freelist: every re-acquire finds a matching buffer (the
  // swap-with-back pop must not lose or corrupt entries) and hands it back
  // cleared.
  Histogram* large_again = pool.Acquire(3, 8, kBins, 1);
  EXPECT_EQ(large_again->MemoryBytes(), large);
  EXPECT_DOUBLE_EQ(large_again->at(0, 0, 0).g, 0.0);
  Histogram* small_again = pool.Acquire(4, 4, kBins, 1);
  Histogram* small_third = pool.Acquire(5, 4, kBins, 1);
  EXPECT_EQ(small_again->MemoryBytes(), small);
  EXPECT_EQ(small_third->MemoryBytes(), small);
  EXPECT_DOUBLE_EQ(small_again->at(0, 0, 0).g, 0.0);
  EXPECT_DOUBLE_EQ(small_third->at(0, 0, 0).g, 0.0);
  EXPECT_EQ(pool.CurrentBytes(), large + 2 * small);
}

TEST(HistBuilderTest, FillGoLeftMatchesPerRowFindBin) {
  Rng rng(909);
  const uint32_t n = 300, d = 10;
  const BinnedRowStore store = MakeRowStore(n, d, 0.3, &rng);
  std::vector<InstanceId> instances;
  for (InstanceId i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.7)) instances.push_back(i);
  }
  for (const bool default_left : {true, false}) {
    const FeatureId feature = static_cast<FeatureId>(rng.Uniform(d));
    const BinId split_bin = static_cast<BinId>(rng.Uniform(kBins));
    Bitmap go_left(instances.size());
    store.FillGoLeft(instances, feature, split_bin, default_left, &go_left);
    for (size_t j = 0; j < instances.size(); ++j) {
      const auto bin = store.FindBin(instances[j], feature);
      const bool expected =
          bin.has_value() ? (*bin <= split_bin) : default_left;
      EXPECT_EQ(go_left.Get(j), expected) << "j=" << j;
    }
  }
}

TEST(HistBuilderTest, ComputeGradientsParallelMatchesSerial) {
  Rng rng(111);
  const uint32_t n = 1001;
  for (uint32_t dims : {1u, 3u}) {
    const auto loss = dims == 1 ? MakeLossForTask(Task::kBinary, 2)
                                : MakeLossForTask(Task::kMultiClass, dims);
    std::vector<float> labels(n);
    std::vector<double> margins(static_cast<size_t>(n) * dims);
    for (uint32_t i = 0; i < n; ++i) {
      labels[i] = static_cast<float>(rng.Uniform(dims == 1 ? 2 : dims));
      for (uint32_t k = 0; k < dims; ++k) {
        margins[static_cast<size_t>(i) * dims + k] = rng.NextGaussian();
      }
    }
    GradientBuffer serial(n, dims);
    loss->ComputeGradients(labels, margins, 0, n, &serial);
    for (uint32_t threads : {1u, 2u, 4u, 7u}) {
      GradientBuffer parallel(n, dims);
      ComputeGradientsParallel(*loss, labels, margins, n, threads, &parallel);
      for (uint32_t i = 0; i < n; ++i) {
        for (uint32_t k = 0; k < dims; ++k) {
          EXPECT_TRUE(parallel.at(i, k) == serial.at(i, k))
              << "dims=" << dims << " threads=" << threads << " i=" << i;
        }
      }
    }
  }
}

// End-to-end form of the determinism contract: whole training runs produce
// byte-identical models at any thread count.
TEST(HistBuilderTest, TrainerBitIdenticalAcrossThreadCounts) {
  SyntheticConfig config;
  config.num_instances = 800;
  config.num_features = 20;
  config.num_classes = 2;
  config.density = 0.4;
  config.seed = 17;
  const Dataset train = GenerateSynthetic(config);
  for (const GrowthPolicy growth :
       {GrowthPolicy::kLevelWise, GrowthPolicy::kLeafWise}) {
    GbdtParams params;
    params.num_trees = 4;
    params.num_layers = 4;
    params.num_candidate_splits = 12;
    params.growth = growth;
    auto reference = Trainer(params).Train(train);
    ASSERT_TRUE(reference.ok());
    const std::string reference_text = ModelToText(*reference);
    for (const uint32_t threads : {2u, 4u, 7u}) {
      params.num_threads = threads;
      auto model = Trainer(params).Train(train);
      ASSERT_TRUE(model.ok());
      EXPECT_EQ(ModelToText(*model), reference_text)
          << "growth=" << static_cast<int>(growth)
          << " num_threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace vero
