// End-to-end fault tolerance: a worker killed mid-training on every
// quadrant must not cost the job — training resumes from the last
// checkpoint (or restarts degraded) on the survivors, the recovery cost is
// accounted, and the recovered model's quality matches the failure-free
// run. Also covers the checkpoint wire format and the guarantee that an
// empty fault plan leaves the simulation bit-identical.

#include <cstdint>
#include <cstdio>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "data/synthetic.h"
#include "quadrants/checkpoint.h"
#include "quadrants/train_distributed.h"
#include "sketch/candidate_splits.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n, uint32_t d, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = 2;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 8, uint32_t layers = 5) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

GbdtModel MakeTinyModel() {
  GbdtModel model(Task::kBinary, 2, 0.3);
  Tree t(3, 1);
  t.SetSplit(0, 4, 1.5f, 2, false, 3.0);
  t.SetLeaf(1, {-0.5f});
  t.SetLeaf(2, {0.5f});
  model.AddTree(std::move(t));
  return model;
}

// ---------------------------------------------------------------------------
// Checkpoint wire format.
// ---------------------------------------------------------------------------

TEST(CheckpointTest, SerializeDeserializeRoundTrip) {
  TrainCheckpoint ck;
  ck.trees_done = 1;
  ck.model = MakeTinyModel();
  ck.has_splits = true;
  ck.splits = CandidateSplits(16, {{0.5f, 1.5f}, {}, {2.0f, 3.0f, 4.0f}});
  const std::vector<uint8_t> bytes = SerializeCheckpoint(ck);

  TrainCheckpoint out;
  ASSERT_TRUE(DeserializeCheckpoint(bytes, &out).ok());
  EXPECT_EQ(out.trees_done, 1u);
  EXPECT_EQ(out.model.num_trees(), 1u);
  EXPECT_TRUE(out.model.tree(0) == ck.model.tree(0));
  ASSERT_TRUE(out.has_splits);
  EXPECT_TRUE(out.splits == ck.splits);
}

TEST(CheckpointTest, NoSplitsVariantRoundTrips) {
  TrainCheckpoint ck;
  ck.trees_done = 1;
  ck.model = MakeTinyModel();
  const std::vector<uint8_t> bytes = SerializeCheckpoint(ck);
  TrainCheckpoint out;
  ASSERT_TRUE(DeserializeCheckpoint(bytes, &out).ok());
  EXPECT_FALSE(out.has_splits);
}

TEST(CheckpointTest, CorruptionIsDetectedNeverFatal) {
  TrainCheckpoint ck;
  ck.trees_done = 1;
  ck.model = MakeTinyModel();
  ck.has_splits = true;
  ck.splits = CandidateSplits(8, {{1.0f, 2.0f}});
  const std::vector<uint8_t> good = SerializeCheckpoint(ck);

  TrainCheckpoint out;
  // Every single-bit flip trips the CRC (or an earlier framing check).
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    EXPECT_EQ(DeserializeCheckpoint(bad, &out).code(),
              StatusCode::kCorruption)
        << "offset " << offset;
  }
  // Every truncation fails cleanly.
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> bad(good.begin(), good.begin() + len);
    EXPECT_EQ(DeserializeCheckpoint(bad, &out).code(),
              StatusCode::kCorruption)
        << "len " << len;
  }
}

TEST(CheckpointTest, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "/ck_roundtrip.vckp";
  TrainCheckpoint ck;
  ck.trees_done = 1;
  ck.model = MakeTinyModel();
  ASSERT_TRUE(SaveCheckpoint(ck, path).ok());
  const auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 1u);
  std::remove(path.c_str());

  EXPECT_FALSE(LoadCheckpoint("/no/such/checkpoint.vckp").ok());
}

// ---------------------------------------------------------------------------
// The acceptance demo: kill worker 2 mid-training on every quadrant.
// ---------------------------------------------------------------------------

class QuadrantFaultTest : public ::testing::TestWithParam<Quadrant> {};

// With per-round checkpointing, a crash mid-training resumes from the last
// checkpoint on the three survivors: the full forest is produced, the
// recovery cost is nonzero and recorded, and AUC matches the failure-free
// run within 1%.
TEST_P(QuadrantFaultTest, CrashMidTrainingRecoversFromCheckpoint) {
  const Quadrant quadrant = GetParam();
  const Dataset data = MakeData(1400, 30, 211);
  const auto [train, valid] = data.SplitTail(0.25);
  const DistTrainOptions options = SmallOptions();

  // Failure-free baseline; its op count tells us where "mid-training" is
  // for this quadrant (the fault schedule is positional).
  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, train, quadrant, options, &valid);
  ASSERT_TRUE(base.status.ok()) << base.status.ToString();
  ASSERT_EQ(base.model.num_trees(), 8u);
  const double auc_clean = EvaluateModel(base.model, valid).value;
  const uint64_t total_ops = clean.worker_stats(2).num_ops;
  ASSERT_GT(total_ops, 20u);

  Cluster faulted(4);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 2));
  DistTrainOptions recovery_options = options;
  recovery_options.checkpoint.interval = 1;
  const DistResult result =
      TrainDistributed(faulted, train, quadrant, recovery_options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.failures_observed, 1);
  EXPECT_EQ(result.recovery.recovery_attempts, 1);
  EXPECT_EQ(result.recovery.final_world_size, 3);
  EXPECT_GT(result.recovery.trees_recovered, 0u);
  EXPECT_GT(result.recovery.trees_retrained, 0u);
  EXPECT_EQ(result.recovery.trees_recovered + result.recovery.trees_retrained,
            8u);
  EXPECT_GT(result.recovery.recovery_seconds, 0.0);
  EXPECT_GT(result.recovery.recovery_bytes, 0u);
  // Prefix stitching: costs and curve cover all 8 rounds exactly once.
  EXPECT_EQ(result.tree_costs.size(), 8u);
  EXPECT_EQ(result.curve.size(), 8u);
  EXPECT_EQ(faulted.dead_ranks(), std::vector<int>{2});

  const double auc = EvaluateModel(result.model, valid).value;
  EXPECT_NEAR(auc, auc_clean, 0.01 * auc_clean);
}

INSTANTIATE_TEST_SUITE_P(AllQuadrants, QuadrantFaultTest,
                         ::testing::Values(Quadrant::kQD1, Quadrant::kQD2,
                                           Quadrant::kQD3, Quadrant::kQD4));

// Without checkpoints the job still completes — degraded to a full restart
// on the survivors — and the redistribution of the dead worker's shard is
// what recovery costs.
TEST(FaultRecoveryTest, NoCheckpointDegradesToFullRestart) {
  const Dataset data = MakeData(1200, 25, 223);
  const auto [train, valid] = data.SplitTail(0.25);
  const DistTrainOptions options = SmallOptions();

  Cluster clean(4);
  const DistResult base =
      TrainDistributed(clean, train, Quadrant::kQD2, options, &valid);
  ASSERT_TRUE(base.status.ok());
  const uint64_t total_ops = clean.worker_stats(2).num_ops;

  Cluster faulted(4);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(2, CollectiveOp::kAny, total_ops / 2));
  const DistResult result =
      TrainDistributed(faulted, train, Quadrant::kQD2, options, &valid);

  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  EXPECT_EQ(result.model.num_trees(), 8u);
  EXPECT_EQ(result.recovery.trees_recovered, 0u);
  EXPECT_EQ(result.recovery.trees_retrained, 8u);
  EXPECT_EQ(result.recovery.final_world_size, 3);
  EXPECT_GT(result.recovery.recovery_bytes, 0u);  // The dead shard, reshipped.
  EXPECT_GT(result.recovery.recovery_seconds, 0.0);
  EXPECT_GT(EvaluateModel(result.model, valid).value, 0.65);
}

// Checkpoints can also be spooled to disk; after a recovered run the final
// on-disk checkpoint holds the complete forest.
TEST(FaultRecoveryTest, OnDiskCheckpointSurvivesRun) {
  const Dataset data = MakeData(1000, 20, 227);
  const DistTrainOptions base_options = SmallOptions(6, 4);

  Cluster clean(3);
  const DistResult base =
      TrainDistributed(clean, data, Quadrant::kQD1, base_options);
  ASSERT_TRUE(base.status.ok());
  const uint64_t total_ops = clean.worker_stats(1).num_ops;

  Cluster faulted(3);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(1, CollectiveOp::kAny, total_ops / 2));
  DistTrainOptions options = base_options;
  options.checkpoint.interval = 2;
  options.checkpoint.dir = ::testing::TempDir();
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD1, options);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();

  const std::string path = options.checkpoint.dir + "/latest.vckp";
  const auto loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 6u);
  EXPECT_EQ(loaded->model.num_trees(), 6u);
  EXPECT_TRUE(loaded->has_splits);
  std::remove(path.c_str());
}

// When a crash makes the job unrecoverable (no recovery budget), the
// failure surfaces as a Status on the result — never an exception or hang.
TEST(FaultRecoveryTest, ExhaustedRecoveryBudgetReturnsStatus) {
  const Dataset data = MakeData(800, 20, 229);
  DistTrainOptions options = SmallOptions(4, 4);
  options.max_recovery_attempts = 0;

  Cluster faulted(3);
  faulted.InstallFaultPlan(
      FaultPlan().Crash(0, CollectiveOp::kAny, 10));
  const DistResult result =
      TrainDistributed(faulted, data, Quadrant::kQD4, options);
  EXPECT_EQ(result.status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(result.recovery.failures_observed, 1);
  EXPECT_EQ(result.recovery.final_world_size, 2);
}

// Acceptance bit-identity: installing an EMPTY fault plan must not perturb
// the simulation at all — byte counters and simulated time of a full
// training run stay exactly equal (not just close) to a run with no plan.
TEST(FaultRecoveryTest, EmptyFaultPlanIsBitIdenticalOnFullTraining) {
  const Dataset data = MakeData(1000, 24, 233);
  const DistTrainOptions options = SmallOptions(5, 5);

  Cluster plain(4);
  const DistResult a =
      TrainDistributed(plain, data, Quadrant::kQD4, options);
  Cluster with_empty_plan(4);
  with_empty_plan.InstallFaultPlan(FaultPlan());
  const DistResult b =
      TrainDistributed(with_empty_plan, data, Quadrant::kQD4, options);

  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_EQ(a.train_bytes_sent, b.train_bytes_sent);
  for (int r = 0; r < 4; ++r) {
    const CommStats& sa = plain.worker_stats(r);
    const CommStats& sb = with_empty_plan.worker_stats(r);
    EXPECT_EQ(sa.bytes_sent, sb.bytes_sent) << "rank " << r;
    EXPECT_EQ(sa.bytes_received, sb.bytes_received) << "rank " << r;
    EXPECT_EQ(sa.num_ops, sb.num_ops) << "rank " << r;
    EXPECT_EQ(sa.sim_seconds, sb.sim_seconds) << "rank " << r;  // Exact.
  }
  EXPECT_EQ(plain.MaxSimSeconds(), with_empty_plan.MaxSimSeconds());
}

}  // namespace
}  // namespace vero
