#include "quadrants/train_distributed.h"

#include <cmath>
#include <gtest/gtest.h>
#include <map>

#include "core/metrics.h"
#include "core/trainer.h"
#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n, uint32_t d, uint32_t c, uint64_t seed) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = c;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

DistTrainOptions SmallOptions(uint32_t trees = 5, uint32_t layers = 5) {
  DistTrainOptions options;
  options.params.num_trees = trees;
  options.params.num_layers = layers;
  options.params.num_candidate_splits = 16;
  return options;
}

void ExpectSameStructure(const GbdtModel& a, const GbdtModel& b,
                         const std::string& label) {
  ASSERT_EQ(a.num_trees(), b.num_trees()) << label;
  for (size_t t = 0; t < a.num_trees(); ++t) {
    const Tree& ta = a.tree(t);
    const Tree& tb = b.tree(t);
    for (NodeId id = 0; id < static_cast<NodeId>(ta.max_nodes()); ++id) {
      ASSERT_EQ(ta.Exists(id), tb.Exists(id))
          << label << " tree " << t << " node " << id;
      if (!ta.Exists(id)) continue;
      ASSERT_EQ(static_cast<int>(ta.node(id).state),
                static_cast<int>(tb.node(id).state))
          << label << " tree " << t << " node " << id;
      if (ta.node(id).state == TreeNode::State::kInternal) {
        EXPECT_EQ(ta.node(id).feature, tb.node(id).feature)
            << label << " tree " << t << " node " << id;
        EXPECT_EQ(ta.node(id).split_bin, tb.node(id).split_bin)
            << label << " tree " << t << " node " << id;
        EXPECT_EQ(ta.node(id).default_left, tb.node(id).default_left)
            << label << " tree " << t << " node " << id;
      } else {
        ASSERT_EQ(ta.node(id).leaf_values.size(),
                  tb.node(id).leaf_values.size());
        for (size_t k = 0; k < ta.node(id).leaf_values.size(); ++k) {
          EXPECT_NEAR(ta.node(id).leaf_values[k], tb.node(id).leaf_values[k],
                      1e-5)
              << label << " tree " << t << " node " << id;
        }
      }
    }
  }
}

// The backbone integration test: with identical hyper-parameters every
// quadrant must grow the same forest — data management changes the cost,
// never the model (§5.2's premise of same-code-base comparison).
TEST(QuadrantEquivalenceTest, AllFourQuadrantsGrowTheSameForestBinary) {
  const Dataset data = MakeData(1200, 30, 2, 71);
  const DistTrainOptions options = SmallOptions();
  std::map<Quadrant, GbdtModel> models;
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    Cluster cluster(4);
    models[q] = TrainDistributed(cluster, data, q, options).model;
  }
  ExpectSameStructure(models[Quadrant::kQD1], models[Quadrant::kQD2],
                      "QD1-vs-QD2");
  ExpectSameStructure(models[Quadrant::kQD2], models[Quadrant::kQD3],
                      "QD2-vs-QD3");
  ExpectSameStructure(models[Quadrant::kQD3], models[Quadrant::kQD4],
                      "QD3-vs-QD4");
}

TEST(QuadrantEquivalenceTest, AllFourQuadrantsAgreeOnMultiClass) {
  const Dataset data = MakeData(900, 20, 4, 73);
  const DistTrainOptions options = SmallOptions(4, 4);
  std::map<Quadrant, GbdtModel> models;
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    Cluster cluster(3);
    models[q] = TrainDistributed(cluster, data, q, options).model;
  }
  ExpectSameStructure(models[Quadrant::kQD1], models[Quadrant::kQD4],
                      "QD1-vs-QD4-multiclass");
  ExpectSameStructure(models[Quadrant::kQD2], models[Quadrant::kQD3],
                      "QD2-vs-QD3-multiclass");
}

TEST(QuadrantEquivalenceTest, SingleWorkerMatchesReferenceTrainer) {
  const Dataset data = MakeData(800, 25, 2, 79);
  const DistTrainOptions options = SmallOptions();
  Trainer reference(options.params);
  auto ref_model = reference.Train(data);
  ASSERT_TRUE(ref_model.ok());
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4, Quadrant::kFeatureParallel}) {
    Cluster cluster(1);
    const DistResult result = TrainDistributed(cluster, data, q, options);
    ExpectSameStructure(*ref_model, result.model,
                        std::string("reference-vs-") + QuadrantToString(q));
  }
}

TEST(QuadrantEquivalenceTest, FeatureParallelMatchesQuadrants) {
  const Dataset data = MakeData(700, 24, 2, 83);
  const DistTrainOptions options = SmallOptions();
  Cluster cluster_fp(3);
  const GbdtModel fp =
      TrainDistributed(cluster_fp, data, Quadrant::kFeatureParallel, options)
          .model;
  // Feature-parallel proposes splits from the full local copy, which equals
  // the distributed sketch pipeline result only when that pipeline sees the
  // data unsharded; compare against the W=1 run of QD4.
  Cluster cluster_qd4(1);
  const GbdtModel qd4 =
      TrainDistributed(cluster_qd4, data, Quadrant::kQD4, options).model;
  ExpectSameStructure(fp, qd4, "feature-parallel-vs-QD4(W=1)");
}

TEST(QuadrantEquivalenceTest, Qd3IndexPoliciesAgree) {
  const Dataset data = MakeData(600, 20, 2, 89);
  const DistTrainOptions options = SmallOptions(3, 4);
  std::map<int, GbdtModel> models;
  int i = 0;
  for (Qd3IndexPolicy policy :
       {Qd3IndexPolicy::kLinearScanOnly, Qd3IndexPolicy::kBinarySearchOnly,
        Qd3IndexPolicy::kMixed}) {
    Cluster cluster(3);
    models[i++] =
        TrainDistributed(cluster, data, Quadrant::kQD3, options, nullptr,
                         policy)
            .model;
  }
  ExpectSameStructure(models[0], models[1], "linear-vs-binary");
  ExpectSameStructure(models[1], models[2], "binary-vs-mixed");
}

TEST(DistTrainTest, WorkerCountDoesNotBreakLearning) {
  const Dataset data = MakeData(3000, 40, 2, 97);
  const auto [train, valid] = data.SplitTail(0.25);
  for (int w : {1, 2, 4, 8}) {
    Cluster cluster(w);
    const DistResult result = TrainDistributed(
        cluster, train, Quadrant::kQD4, SmallOptions(8, 6), &valid);
    EXPECT_GT(EvaluateModel(result.model, valid).value, 0.65)
        << "W=" << w;
  }
}

TEST(DistTrainTest, CurveIsRecordedWithMonotoneElapsed) {
  const Dataset data = MakeData(1000, 20, 2, 101);
  const auto [train, valid] = data.SplitTail(0.3);
  Cluster cluster(3);
  const DistResult result = TrainDistributed(cluster, train, Quadrant::kQD2,
                                             SmallOptions(6, 4), &valid);
  ASSERT_EQ(result.curve.size(), 6u);
  double prev_elapsed = 0.0;
  double prev_loss = 1e300;
  for (const IterationStats& it : result.curve) {
    EXPECT_GT(it.elapsed_seconds, prev_elapsed);
    prev_elapsed = it.elapsed_seconds;
    EXPECT_LE(it.train_loss, prev_loss + 1e-9);
    prev_loss = it.train_loss;
    EXPECT_TRUE(it.has_valid_metric);
  }
}

TEST(DistTrainTest, TreeCostsPopulated) {
  const Dataset data = MakeData(1000, 30, 2, 103);
  Cluster cluster(4);
  const DistResult result =
      TrainDistributed(cluster, data, Quadrant::kQD4, SmallOptions(4, 5));
  ASSERT_EQ(result.tree_costs.size(), 4u);
  for (const TreeCost& c : result.tree_costs) {
    EXPECT_GE(c.comp_seconds(), 0.0);
    EXPECT_GT(c.comm_seconds, 0.0);
  }
  EXPECT_GT(result.TrainSeconds(), 0.0);
  EXPECT_GT(result.setup_seconds, 0.0);
  EXPECT_GT(result.peak_histogram_bytes, 0u);
  EXPECT_GT(result.data_bytes, 0u);
  EXPECT_GT(result.train_bytes_sent, 0u);
}

// §3.1.2: vertical histogram memory is ~1/W of horizontal.
TEST(CostModelTest, VerticalUsesLessHistogramMemory) {
  const Dataset data = MakeData(1500, 200, 2, 107);
  const DistTrainOptions options = SmallOptions(2, 6);
  Cluster c2(4), c4(4);
  const DistResult qd2 =
      TrainDistributed(c2, data, Quadrant::kQD2, options);
  const DistResult qd4 =
      TrainDistributed(c4, data, Quadrant::kQD4, options);
  // Expect roughly a W-fold reduction; allow slack for uneven grouping.
  EXPECT_LT(qd4.peak_histogram_bytes * 2,
            qd2.peak_histogram_bytes);
}

// §3.1.3: horizontal communication scales with D, vertical with N.
TEST(CostModelTest, VerticalMovesFewerBytesAtHighDimensionality) {
  const Dataset data = MakeData(1000, 400, 2, 109);
  const DistTrainOptions options = SmallOptions(2, 6);
  Cluster c2(4), c4(4);
  const uint64_t qd2_bytes =
      TrainDistributed(c2, data, Quadrant::kQD2, options).train_bytes_sent;
  const uint64_t qd4_bytes =
      TrainDistributed(c4, data, Quadrant::kQD4, options).train_bytes_sent;
  EXPECT_GT(qd2_bytes, 4 * qd4_bytes);
}

TEST(CostModelTest, Qd1MovesMoreThanQd2) {
  // All-reduce (2x) vs reduce-scatter (1x) over the same histograms.
  const Dataset data = MakeData(1000, 100, 2, 113);
  const DistTrainOptions options = SmallOptions(2, 5);
  Cluster c1(4), c2(4);
  const uint64_t qd1_bytes =
      TrainDistributed(c1, data, Quadrant::kQD1, options).train_bytes_sent;
  const uint64_t qd2_bytes =
      TrainDistributed(c2, data, Quadrant::kQD2, options).train_bytes_sent;
  EXPECT_GT(qd1_bytes, qd2_bytes);
}

TEST(DistTrainTest, SubtractionAblationKeepsModel) {
  const Dataset data = MakeData(900, 25, 2, 127);
  DistTrainOptions with = SmallOptions();
  DistTrainOptions without = SmallOptions();
  without.params.histogram_subtraction = false;
  Cluster ca(3), cb(3);
  const GbdtModel a =
      TrainDistributed(ca, data, Quadrant::kQD4, with).model;
  const GbdtModel b =
      TrainDistributed(cb, data, Quadrant::kQD4, without).model;
  ExpectSameStructure(a, b, "subtraction-ablation");
}

TEST(DistTrainTest, EarlyStoppingHaltsAllWorkersTogether) {
  // Pure-noise labels: validation AUC plateaus immediately, so the cluster
  // must stop long before the 100-tree budget — and produce a coherent
  // model (every worker takes the same branch).
  SyntheticConfig config;
  config.num_instances = 1200;
  config.num_features = 10;
  config.label_noise = 1000.0;
  config.seed = 139;
  const Dataset data = GenerateSynthetic(config);
  const auto [train, valid] = data.SplitTail(0.5);
  DistTrainOptions options = SmallOptions(100, 4);
  options.params.early_stopping_rounds = 4;
  Cluster cluster(4);
  const DistResult result =
      TrainDistributed(cluster, train, Quadrant::kQD4, options, &valid);
  EXPECT_LT(result.model.num_trees(), 100u);
  EXPECT_EQ(result.model.num_trees(), result.tree_costs.size());
  EXPECT_EQ(result.model.num_trees(), result.curve.size());
}

TEST(DistTrainTest, RegressionAcrossQuadrants) {
  SyntheticConfig config;
  config.num_instances = 1200;
  config.num_features = 20;
  config.num_classes = 1;  // Regression.
  config.density = 0.4;
  config.seed = 137;
  const Dataset data = GenerateSynthetic(config);
  double baseline = 0.0;
  for (float y : data.labels()) baseline += y * y;
  baseline = std::sqrt(baseline / data.num_instances());

  GbdtModel reference;
  bool first = true;
  for (Quadrant q : {Quadrant::kQD1, Quadrant::kQD2, Quadrant::kQD3,
                     Quadrant::kQD4}) {
    Cluster cluster(4);
    DistTrainOptions options = SmallOptions(20, 5);
    const DistResult result = TrainDistributed(cluster, data, q, options);
    const MetricValue rmse = EvaluateModel(result.model, data);
    EXPECT_EQ(rmse.name, "rmse");
    EXPECT_LT(rmse.value, baseline) << QuadrantToString(q);
    if (first) {
      reference = result.model;
      first = false;
    } else {
      ExpectSameStructure(reference, result.model,
                          std::string("regression-") + QuadrantToString(q));
    }
  }
}

// Parameterized sweep over quadrants x worker counts x tasks.
struct DistSweepParam {
  Quadrant quadrant;
  int workers;
  uint32_t classes;
};

class DistSweepTest : public ::testing::TestWithParam<DistSweepParam> {};

TEST_P(DistSweepTest, TrainsAndReducesLoss) {
  const DistSweepParam p = GetParam();
  const Dataset data = MakeData(800, 20, p.classes, 131 + p.classes);
  Cluster cluster(p.workers);
  const Dataset* no_valid = nullptr;
  DistTrainOptions options = SmallOptions(4, 4);
  const DistResult result =
      TrainDistributed(cluster, data, p.quadrant, options, no_valid);
  EXPECT_EQ(result.model.num_trees(), 4u);
  const MetricValue metric = EvaluateModel(result.model, data);
  if (p.classes == 2) {
    EXPECT_GT(metric.value, 0.6);
  } else {
    EXPECT_GT(metric.value, 1.2 / p.classes);
  }
}

INSTANTIATE_TEST_SUITE_P(
    QuadrantsWorkersTasks, DistSweepTest,
    ::testing::Values(DistSweepParam{Quadrant::kQD1, 2, 2},
                      DistSweepParam{Quadrant::kQD1, 5, 3},
                      DistSweepParam{Quadrant::kQD2, 3, 2},
                      DistSweepParam{Quadrant::kQD2, 5, 5},
                      DistSweepParam{Quadrant::kQD3, 2, 2},
                      DistSweepParam{Quadrant::kQD3, 4, 3},
                      DistSweepParam{Quadrant::kQD4, 2, 2},
                      DistSweepParam{Quadrant::kQD4, 6, 4},
                      DistSweepParam{Quadrant::kFeatureParallel, 3, 2},
                      DistSweepParam{Quadrant::kFeatureParallel, 4, 3}));

}  // namespace
}  // namespace vero
