#include "common/random.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

namespace vero {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformWithinBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    EXPECT_EQ(rng.Uniform(1), 0u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, UniformDoubleRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-3.0, 5.0);
    ASSERT_GE(v, -3.0);
    ASSERT_LT(v, 5.0);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsSortedAndDistinct) {
  Rng rng(19);
  for (uint32_t n : {10u, 100u, 1000u}) {
    for (uint32_t k : {1u, 3u, n / 2, n}) {
      const auto sample = rng.SampleWithoutReplacement(n, k);
      ASSERT_EQ(sample.size(), k);
      EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
      EXPECT_EQ(std::adjacent_find(sample.begin(), sample.end()),
                sample.end());
      for (uint32_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementCoversUniformly) {
  Rng rng(23);
  std::vector<int> counts(20, 0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    for (uint32_t v : rng.SampleWithoutReplacement(20, 5)) ++counts[v];
  }
  // Each element appears with probability 5/20 = 1/4.
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.25, 0.04);
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sorted[i], i);
  // Overwhelmingly unlikely to be the identity.
  std::vector<int> identity(100);
  std::iota(identity.begin(), identity.end(), 0);
  EXPECT_NE(v, identity);
}

}  // namespace
}  // namespace vero
