// Property sweep over the horizontal-to-vertical transformation: for every
// combination of worker count, shape, grouping strategy, and wire encoding,
// the transform must conserve entries, preserve bins exactly, cover every
// feature exactly once, and deliver identical labels everywhere.

#include <gtest/gtest.h>
#include <tuple>

#include "core/binned.h"
#include "data/synthetic.h"
#include "partition/transform.h"

namespace vero {
namespace {

using Param = std::tuple<int,                     // workers
                         uint32_t,                // features
                         double,                  // density
                         ColumnGroupingStrategy,  // grouping
                         TransformEncoding>;      // encoding

class TransformPropertyTest : public ::testing::TestWithParam<Param> {};

TEST_P(TransformPropertyTest, ConservesEveryEntryBinAndLabel) {
  const auto [w, d, density, grouping, encoding] = GetParam();
  SyntheticConfig config;
  config.num_instances = 400;
  config.num_features = d;
  config.density = density;
  config.seed = 1000 + w * 13 + d;
  const Dataset data = GenerateSynthetic(config);

  std::vector<Dataset> shards;
  for (int r = 0; r < w; ++r) {
    const auto [begin, end] = HorizontalRange(data.num_instances(), w, r);
    shards.emplace_back(data.matrix().SliceRows(begin, end),
                        std::vector<float>(data.labels().begin() + begin,
                                           data.labels().begin() + end),
                        data.task(), data.num_classes());
  }

  Cluster cluster(w);
  TransformOptions options;
  options.grouping = grouping;
  options.encoding = encoding;
  options.num_candidate_splits = 12;
  std::vector<VerticalShard> verticals(w);
  cluster.Run([&](WorkerContext& ctx) {
    verticals[ctx.rank()] =
        HorizontalToVertical(ctx, shards[ctx.rank()], options);
  });

  // Feature coverage: every feature owned exactly once, consistently.
  std::vector<int> owner_count(d, 0);
  for (int r = 0; r < w; ++r) {
    EXPECT_EQ(verticals[r].feature_owner, verticals[0].feature_owner);
    for (FeatureId f : verticals[r].owned_features) ++owner_count[f];
  }
  for (uint32_t f = 0; f < d; ++f) EXPECT_EQ(owner_count[f], 1);

  // Labels identical and complete on every worker.
  for (int r = 0; r < w; ++r) {
    EXPECT_EQ(verticals[r].labels, data.labels());
  }

  // Entry + bin conservation against direct binning of the full dataset.
  const BinnedRowStore reference =
      BinnedRowStore::FromCsr(data.matrix(), verticals[0].splits);
  uint64_t total_entries = 0;
  for (int r = 0; r < w; ++r) {
    const VerticalShard& v = verticals[r];
    total_entries += v.data.num_entries();
    for (InstanceId i = 0; i < data.num_instances(); ++i) {
      auto features = v.data.RowFeatures(i);
      auto bins = v.data.RowBins(i);
      for (size_t k = 0; k < features.size(); ++k) {
        const FeatureId global_f = v.owned_features[features[k]];
        const auto expected = reference.FindBin(i, global_f);
        ASSERT_TRUE(expected.has_value());
        ASSERT_EQ(bins[k], *expected)
            << "W=" << w << " D=" << d << " instance " << i;
      }
    }
  }
  EXPECT_EQ(total_entries, data.num_nonzeros());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransformPropertyTest,
    ::testing::Combine(
        ::testing::Values(1, 3, 8),
        ::testing::Values(10u, 100u),
        ::testing::Values(0.1, 0.8),
        ::testing::Values(ColumnGroupingStrategy::kGreedyBalance,
                          ColumnGroupingStrategy::kRange),
        ::testing::Values(TransformEncoding::kNaive,
                          TransformEncoding::kBlockified)));

}  // namespace
}  // namespace vero
