#include "core/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

TEST(AucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(Auc({0, 0, 1, 1}, {0.1, 0.2, 0.8, 0.9}), 1.0);
  EXPECT_DOUBLE_EQ(Auc({1, 1, 0, 0}, {0.1, 0.2, 0.8, 0.9}), 0.0);
}

TEST(AucTest, RandomScoresGiveHalf) {
  EXPECT_DOUBLE_EQ(Auc({0, 1}, {0.5, 0.5}), 0.5);
}

TEST(AucTest, HandComputedCase) {
  // Pairs: (0.1-,0.4+),(0.1-,0.35-),(0.1-,0.8+) etc. Classic example:
  const std::vector<float> labels = {1, 0, 1, 0};
  const std::vector<double> scores = {0.8, 0.4, 0.35, 0.1};
  // Positive scores {0.8, 0.35}, negative {0.4, 0.1}:
  // correct pairs: (0.8>0.4), (0.8>0.1), (0.35<0.4 no), (0.35>0.1) = 3/4.
  EXPECT_DOUBLE_EQ(Auc(labels, scores), 0.75);
}

TEST(AucTest, TiesCountHalf) {
  EXPECT_DOUBLE_EQ(Auc({0, 1, 0, 1}, {0.5, 0.5, 0.1, 0.9}), 0.875);
}

TEST(AucTest, DegenerateSingleClass) {
  EXPECT_DOUBLE_EQ(Auc({1, 1}, {0.1, 0.9}), 0.5);
  EXPECT_DOUBLE_EQ(Auc({0, 0}, {0.1, 0.9}), 0.5);
}

TEST(AucTest, MatchesBruteForceOnRandomData) {
  Rng rng(4);
  const int n = 300;
  std::vector<float> labels(n);
  std::vector<double> scores(n);
  for (int i = 0; i < n; ++i) {
    labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
    scores[i] = rng.Uniform(20) / 20.0;  // Plenty of ties.
  }
  double correct = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (labels[i] > 0.5f && labels[j] < 0.5f) {
        total += 1.0;
        if (scores[i] > scores[j]) {
          correct += 1.0;
        } else if (scores[i] == scores[j]) {
          correct += 0.5;
        }
      }
    }
  }
  EXPECT_NEAR(Auc(labels, scores), correct / total, 1e-12);
}

TEST(AccuracyTest, BinaryThresholdsAtZero) {
  EXPECT_DOUBLE_EQ(Accuracy({1, 0, 1}, {0.5, -0.2, -0.1}, 1), 2.0 / 3);
}

TEST(AccuracyTest, MultiClassArgmax) {
  // Two instances, three classes.
  const std::vector<double> margins = {0.1, 0.9, 0.0,   // argmax 1
                                       2.0, 1.0, 3.0};  // argmax 2
  EXPECT_DOUBLE_EQ(Accuracy({1, 2}, margins, 3), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy({0, 2}, margins, 3), 0.5);
}

TEST(AccuracyTest, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(Accuracy({}, {}, 3), 0.0);
}

TEST(RmseTest, HandComputed) {
  EXPECT_DOUBLE_EQ(Rmse({1, 2}, {2.0, 4.0}), std::sqrt((1.0 + 4.0) / 2));
  EXPECT_DOUBLE_EQ(Rmse({3}, {3.0}), 0.0);
}

TEST(LogLossTest, DelegatesToTaskLoss) {
  EXPECT_NEAR(LogLoss(Task::kBinary, 2, {1.0f}, {0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogLoss(Task::kMultiClass, 3, {0.0f}, {1.0, 1.0, 1.0}),
              std::log(3.0), 1e-12);
}

TEST(EvaluateMarginsTest, PicksHeadlineMetricByTask) {
  EXPECT_EQ(EvaluateMargins(Task::kBinary, 2, {0, 1}, {-1.0, 1.0}).name,
            "auc");
  EXPECT_EQ(EvaluateMargins(Task::kRegression, 1, {0.5f}, {0.5}).name,
            "rmse");
  EXPECT_EQ(
      EvaluateMargins(Task::kMultiClass, 3, {0.0f}, {1.0, 0.0, 0.0}).name,
      "accuracy");
  EXPECT_FALSE(
      EvaluateMargins(Task::kRegression, 1, {0.5f}, {0.5}).higher_is_better);
}

}  // namespace
}  // namespace vero
