#include "data/sparse_matrix.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace vero {
namespace {

CsrMatrix MakeSmall() {
  // rows: 0 -> {(0, 1.0), (2, 3.0)}, 1 -> {}, 2 -> {(1, 2.0), (2, 5.0)}
  CsrMatrix m;
  m.set_num_cols(3);
  m.StartRow();
  m.PushEntry(0, 1.0f);
  m.PushEntry(2, 3.0f);
  m.StartRow();
  m.StartRow();
  m.PushEntry(1, 2.0f);
  m.PushEntry(2, 5.0f);
  return m;
}

TEST(CsrMatrixTest, BasicShape) {
  CsrMatrix m = MakeSmall();
  EXPECT_EQ(m.num_rows(), 3u);
  EXPECT_EQ(m.num_cols(), 3u);
  EXPECT_EQ(m.num_nonzeros(), 4u);
  EXPECT_EQ(m.RowLength(0), 2u);
  EXPECT_EQ(m.RowLength(1), 0u);
  auto f0 = m.RowFeatures(0);
  auto v0 = m.RowValues(0);
  ASSERT_EQ(f0.size(), 2u);
  EXPECT_EQ(f0[0], 0u);
  EXPECT_EQ(f0[1], 2u);
  EXPECT_EQ(v0[0], 1.0f);
  EXPECT_EQ(v0[1], 3.0f);
}

TEST(CsrMatrixTest, ToCscTransposesCorrectly) {
  CscMatrix c = MakeSmall().ToCsc();
  EXPECT_EQ(c.num_rows(), 3u);
  EXPECT_EQ(c.num_cols(), 3u);
  EXPECT_EQ(c.num_nonzeros(), 4u);
  auto col2_rows = c.ColumnRows(2);
  auto col2_vals = c.ColumnValues(2);
  ASSERT_EQ(col2_rows.size(), 2u);
  EXPECT_EQ(col2_rows[0], 0u);
  EXPECT_EQ(col2_rows[1], 2u);
  EXPECT_EQ(col2_vals[0], 3.0f);
  EXPECT_EQ(col2_vals[1], 5.0f);
  EXPECT_EQ(c.ColumnLength(0), 1u);
  EXPECT_EQ(c.ColumnLength(1), 1u);
}

TEST(CsrMatrixTest, SliceRows) {
  CsrMatrix m = MakeSmall();
  CsrMatrix s = m.SliceRows(1, 3);
  EXPECT_EQ(s.num_rows(), 2u);
  EXPECT_EQ(s.num_cols(), 3u);
  EXPECT_EQ(s.num_nonzeros(), 2u);
  EXPECT_EQ(s.RowLength(0), 0u);
  auto f = s.RowFeatures(1);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0], 1u);
}

TEST(CsrMatrixTest, SliceEmptyRange) {
  CsrMatrix s = MakeSmall().SliceRows(1, 1);
  EXPECT_EQ(s.num_rows(), 0u);
  EXPECT_EQ(s.num_nonzeros(), 0u);
}

TEST(CsrMatrixTest, FilterColumns) {
  CsrMatrix m = MakeSmall();
  std::vector<bool> keep = {true, false, true};
  CsrMatrix f = m.FilterColumns(keep);
  EXPECT_EQ(f.num_rows(), 3u);
  EXPECT_EQ(f.num_nonzeros(), 3u);  // Drops (1, 2.0).
  EXPECT_EQ(f.RowLength(2), 1u);
  EXPECT_EQ(f.RowFeatures(2)[0], 2u);
}

TEST(CscMatrixTest, ToCsrInverts) {
  CsrMatrix m = MakeSmall();
  CsrMatrix round = m.ToCsc().ToCsr();
  EXPECT_EQ(round.num_rows(), m.num_rows());
  EXPECT_EQ(round.row_ptr(), m.row_ptr());
  EXPECT_EQ(round.features(), m.features());
  EXPECT_EQ(round.values(), m.values());
}

TEST(CscMatrixTest, IncrementalConstruction) {
  CscMatrix c;
  c.set_num_rows(4);
  c.StartColumn();
  c.PushEntry(0, 1.0f);
  c.PushEntry(3, 2.0f);
  c.StartColumn();
  EXPECT_EQ(c.num_cols(), 2u);
  EXPECT_EQ(c.ColumnLength(0), 2u);
  EXPECT_EQ(c.ColumnLength(1), 0u);
}

TEST(SparseMatrixTest, MemoryBytesNonZero) {
  CsrMatrix m = MakeSmall();
  EXPECT_GT(m.MemoryBytes(), 0u);
  EXPECT_GT(m.ToCsc().MemoryBytes(), 0u);
}

class SparseRoundTripTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t, double>> {
};

TEST_P(SparseRoundTripTest, CsrCscRoundTripIsIdentity) {
  const auto [rows, cols, density] = GetParam();
  Rng rng(rows * 1000 + cols);
  CsrMatrix m;
  m.set_num_cols(cols);
  for (uint32_t i = 0; i < rows; ++i) {
    m.StartRow();
    for (uint32_t f = 0; f < cols; ++f) {
      if (rng.Bernoulli(density)) {
        m.PushEntry(f, static_cast<float>(rng.NextDouble()));
      }
    }
  }
  const CsrMatrix round = m.ToCsc().ToCsr();
  EXPECT_EQ(round.row_ptr(), m.row_ptr());
  EXPECT_EQ(round.features(), m.features());
  EXPECT_EQ(round.values(), m.values());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SparseRoundTripTest,
    ::testing::Values(std::make_tuple(1u, 1u, 1.0),
                      std::make_tuple(10u, 5u, 0.5),
                      std::make_tuple(100u, 50u, 0.1),
                      std::make_tuple(50u, 200u, 0.02),
                      std::make_tuple(200u, 3u, 0.9)));

}  // namespace
}  // namespace vero
