#include "core/binned.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeData() {
  SyntheticConfig config;
  config.num_instances = 300;
  config.num_features = 15;
  config.density = 0.4;
  config.seed = 21;
  return GenerateSynthetic(config);
}

TEST(BinnedRowStoreTest, FromCsrPreservesStructure) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedRowStore store = BinnedRowStore::FromCsr(d.matrix(), splits);
  EXPECT_EQ(store.num_rows(), d.num_instances());
  EXPECT_EQ(store.num_features(), d.num_features());
  EXPECT_EQ(store.num_entries(), d.num_nonzeros());
  for (InstanceId i = 0; i < d.num_instances(); ++i) {
    auto orig = d.matrix().RowFeatures(i);
    auto binned = store.RowFeatures(i);
    ASSERT_EQ(orig.size(), binned.size());
    for (size_t k = 0; k < orig.size(); ++k) EXPECT_EQ(orig[k], binned[k]);
  }
}

TEST(BinnedRowStoreTest, BinsMatchDirectBinning) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedRowStore store = BinnedRowStore::FromCsr(d.matrix(), splits);
  const std::vector<BinId> expected = BinValues(d.matrix(), splits);
  size_t k = 0;
  for (InstanceId i = 0; i < d.num_instances(); ++i) {
    for (BinId b : store.RowBins(i)) {
      EXPECT_EQ(b, expected[k]);
      ++k;
    }
  }
}

TEST(BinnedRowStoreTest, FindBinLocatesPresentFeatures) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedRowStore store = BinnedRowStore::FromCsr(d.matrix(), splits);
  for (InstanceId i = 0; i < 50; ++i) {
    auto features = store.RowFeatures(i);
    auto bins = store.RowBins(i);
    for (size_t k = 0; k < features.size(); ++k) {
      const auto found = store.FindBin(i, features[k]);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(*found, bins[k]);
    }
    // A feature not in the row must return nullopt.
    for (FeatureId f = 0; f < d.num_features(); ++f) {
      const bool present =
          std::find(features.begin(), features.end(), f) != features.end();
      EXPECT_EQ(store.FindBin(i, f).has_value(), present);
    }
  }
}

TEST(BinnedColumnStoreTest, FromCsrTransposes) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedColumnStore store =
      BinnedColumnStore::FromCsr(d.matrix(), splits);
  EXPECT_EQ(store.num_rows(), d.num_instances());
  EXPECT_EQ(store.num_features(), d.num_features());
  EXPECT_EQ(store.num_entries(), d.num_nonzeros());
  // Column lengths match the transpose.
  const CscMatrix csc = d.matrix().ToCsc();
  for (FeatureId f = 0; f < d.num_features(); ++f) {
    EXPECT_EQ(store.ColumnLength(f), csc.ColumnLength(f));
    auto rows = store.ColumnRows(f);
    EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  }
}

TEST(BinnedColumnStoreTest, RowAndColumnStoresAgreeOnEveryBin) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedRowStore rows = BinnedRowStore::FromCsr(d.matrix(), splits);
  const BinnedColumnStore cols =
      BinnedColumnStore::FromCsr(d.matrix(), splits);
  for (InstanceId i = 0; i < d.num_instances(); ++i) {
    auto features = rows.RowFeatures(i);
    auto bins = rows.RowBins(i);
    for (size_t k = 0; k < features.size(); ++k) {
      const auto found = cols.FindBin(features[k], i);
      ASSERT_TRUE(found.has_value());
      EXPECT_EQ(*found, bins[k]);
    }
  }
}

TEST(BinnedColumnStoreTest, FindBinMissAndIncremental) {
  BinnedColumnStore store;
  store.set_num_rows(10);
  store.StartColumn();
  store.PushEntry(2, 1);
  store.PushEntry(7, 3);
  EXPECT_FALSE(store.FindBin(0, 3).has_value());
  ASSERT_TRUE(store.FindBin(0, 7).has_value());
  EXPECT_EQ(*store.FindBin(0, 7), 3);
}

TEST(BinnedStoresTest, MemoryBytesSmallerThanRawMatrix) {
  const Dataset d = MakeData();
  const CandidateSplits splits = ProposeCandidateSplits(d, 8);
  const BinnedRowStore store = BinnedRowStore::FromCsr(d.matrix(), splits);
  // BinId is 2 bytes vs 4-byte float values.
  EXPECT_LT(store.MemoryBytes(), d.matrix().MemoryBytes());
}

}  // namespace
}  // namespace vero
