// Tests for the small common utilities: timers, logging levels, CHECK
// macros, and GbdtParams validation.

#include <gtest/gtest.h>
#include <thread>

#include "common/logging.h"
#include "common/timer.h"
#include "core/gbdt_params.h"

namespace vero {
namespace {

TEST(WallTimerTest, AccumulatesAcrossStopResume) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.Stop();
  const double first = timer.Seconds();
  EXPECT_GE(first, 0.008);
  // Stopped: no growth.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_DOUBLE_EQ(timer.Seconds(), first);
  timer.Resume();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Stop();
  EXPECT_GT(timer.Seconds(), first);
}

TEST(WallTimerTest, RestartZeroes) {
  WallTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  timer.Restart();
  EXPECT_LT(timer.Seconds(), 0.004);
}

TEST(ThreadCpuTimerTest, CountsCpuNotSleep) {
  ThreadCpuTimer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  timer.Stop();
  // Sleeping burns (almost) no CPU.
  EXPECT_LT(timer.Seconds(), 0.02);

  timer.Restart();
  volatile double x = 1.0;
  for (int i = 0; i < 20000000; ++i) x = x * 1.0000001;
  timer.Stop();
  EXPECT_GT(timer.Seconds(), 0.001);
}

TEST(ThreadCpuTimerTest, IsolatedPerThread) {
  ThreadCpuTimer main_timer;
  std::thread burner([] {
    volatile double x = 1.0;
    for (int i = 0; i < 30000000; ++i) x = x * 1.0000001;
  });
  burner.join();
  main_timer.Stop();
  // The other thread's CPU must not appear here (joining is a wait).
  EXPECT_LT(main_timer.Seconds(), 0.05);
}

TEST(LoggingTest, MinLevelRoundTrip) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(original);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(VERO_CHECK(1 == 2) << "impossible", "Check failed: 1 == 2");
  EXPECT_DEATH(VERO_CHECK_EQ(3, 4), "3 vs 4");
  EXPECT_DEATH(VERO_CHECK_LT(5, 5), "Check failed");
}

TEST(LoggingDeathTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(VERO_CHECK_OK(Status::IOError("disk on fire")),
               "disk on fire");
}

TEST(LoggingTest, ChecksPassSilently) {
  VERO_CHECK(true);
  VERO_CHECK_EQ(1, 1);
  VERO_CHECK_NE(1, 2);
  VERO_CHECK_LE(1, 1);
  VERO_CHECK_GE(2, 1);
  VERO_CHECK_GT(2, 1);
  VERO_CHECK_OK(Status::OK());
}

TEST(GbdtParamsTest, DefaultsAreValidAndMatchPaper) {
  GbdtParams params;
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_EQ(params.num_trees, 100u);       // T = 100 (§5.1)
  EXPECT_EQ(params.num_layers, 8u);        // L = 8
  EXPECT_EQ(params.num_candidate_splits, 20u);  // q = 20
  EXPECT_TRUE(params.histogram_subtraction);
}

TEST(GbdtParamsTest, RejectsEachBadField) {
  auto bad = [](auto mutate) {
    GbdtParams params;
    mutate(params);
    return !params.Validate().ok();
  };
  EXPECT_TRUE(bad([](GbdtParams& p) { p.num_trees = 0; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.num_layers = 1; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.num_layers = 30; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.num_candidate_splits = 0; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.num_candidate_splits = 100000; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.learning_rate = 0.0; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.reg_lambda = -1.0; }));
  EXPECT_TRUE(bad([](GbdtParams& p) { p.reg_gamma = -0.5; }));
}

TEST(GbdtParamsTest, EffectiveMaxLeaves) {
  GbdtParams params;
  params.num_layers = 5;
  EXPECT_EQ(params.EffectiveMaxLeaves(), 16u);  // 2^(5-1)
  params.max_leaves = 6;
  EXPECT_EQ(params.EffectiveMaxLeaves(), 6u);
}

}  // namespace
}  // namespace vero
