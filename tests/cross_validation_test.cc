#include "core/cross_validation.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n = 2000) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = 20;
  config.density = 0.5;
  config.seed = 81;
  return GenerateSynthetic(config);
}

GbdtParams FastParams() {
  GbdtParams params;
  params.num_trees = 5;
  params.num_layers = 4;
  params.num_candidate_splits = 8;
  return params;
}

TEST(MakeFoldTest, FoldsPartitionTheDataset) {
  const Dataset data = MakeData(103);  // Not divisible by 5.
  std::vector<uint32_t> order(103);
  std::iota(order.begin(), order.end(), 0u);
  uint32_t total_valid = 0;
  for (uint32_t fold = 0; fold < 5; ++fold) {
    const auto [train, valid] = MakeFold(data, order, fold, 5);
    EXPECT_EQ(train.num_instances() + valid.num_instances(), 103u);
    EXPECT_GE(valid.num_instances(), 20u);
    EXPECT_LE(valid.num_instances(), 21u);
    total_valid += valid.num_instances();
  }
  EXPECT_EQ(total_valid, 103u);
}

TEST(MakeFoldTest, RowsCarryTheirLabelsAndFeatures) {
  const Dataset data = MakeData(50);
  std::vector<uint32_t> order(50);
  std::iota(order.begin(), order.end(), 0u);
  std::reverse(order.begin(), order.end());  // Nontrivial order.
  const auto [train, valid] = MakeFold(data, order, 0, 5);
  // Fold 0 of the reversed order = instances 49..40.
  ASSERT_EQ(valid.num_instances(), 10u);
  for (uint32_t j = 0; j < 10; ++j) {
    const uint32_t original = 49 - j;
    EXPECT_EQ(valid.labels()[j], data.labels()[original]);
    auto a = valid.matrix().RowFeatures(j);
    auto b = data.matrix().RowFeatures(original);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(CrossValidateTest, ProducesOneMetricPerFold) {
  const auto result = CrossValidate(MakeData(), FastParams());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->fold_metrics.size(), 5u);
  EXPECT_EQ(result->metric_name, "auc");
  EXPECT_TRUE(result->higher_is_better);
  for (double m : result->fold_metrics) {
    EXPECT_GT(m, 0.5);  // Learnable data: every fold beats chance.
    EXPECT_LE(m, 1.0);
  }
  // Mean/stddev consistency.
  double mean = 0.0;
  for (double m : result->fold_metrics) mean += m;
  mean /= result->fold_metrics.size();
  EXPECT_NEAR(result->mean, mean, 1e-12);
  EXPECT_GE(result->stddev, 0.0);
}

TEST(CrossValidateTest, DeterministicInSeed) {
  const Dataset data = MakeData(800);
  CrossValidationOptions options;
  options.num_folds = 3;
  const auto a = CrossValidate(data, FastParams(), options);
  const auto b = CrossValidate(data, FastParams(), options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->fold_metrics, b->fold_metrics);
  options.seed = 43;
  const auto c = CrossValidate(data, FastParams(), options);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->fold_metrics, c->fold_metrics);
}

TEST(CrossValidateTest, RejectsBadInputs) {
  CrossValidationOptions options;
  options.num_folds = 1;
  EXPECT_FALSE(CrossValidate(MakeData(100), FastParams(), options).ok());
  options.num_folds = 200;
  EXPECT_FALSE(CrossValidate(MakeData(100), FastParams(), options).ok());
  GbdtParams bad = FastParams();
  bad.num_trees = 0;
  EXPECT_FALSE(CrossValidate(MakeData(100), bad).ok());
}

TEST(CrossValidateTest, RegressionUsesRmse) {
  SyntheticConfig config;
  config.num_instances = 600;
  config.num_features = 10;
  config.num_classes = 1;
  config.seed = 83;
  const auto result =
      CrossValidate(GenerateSynthetic(config), FastParams());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->metric_name, "rmse");
  EXPECT_FALSE(result->higher_is_better);
}

}  // namespace
}  // namespace vero
