#include "data/dataset.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeBinary(uint32_t n) {
  CsrMatrix m;
  m.set_num_cols(2);
  std::vector<float> labels;
  for (uint32_t i = 0; i < n; ++i) {
    m.StartRow();
    m.PushEntry(0, static_cast<float>(i));
    labels.push_back(static_cast<float>(i % 2));
  }
  return Dataset(std::move(m), std::move(labels), Task::kBinary, 2);
}

TEST(DatasetTest, BasicAccessors) {
  Dataset d = MakeBinary(10);
  EXPECT_EQ(d.num_instances(), 10u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 2u);
  EXPECT_EQ(d.gradient_dim(), 1u);
  EXPECT_EQ(d.task(), Task::kBinary);
  EXPECT_DOUBLE_EQ(d.density(), 0.5);
}

TEST(DatasetTest, MultiClassGradientDim) {
  CsrMatrix m;
  m.set_num_cols(1);
  std::vector<float> labels;
  for (int i = 0; i < 6; ++i) {
    m.StartRow();
    labels.push_back(static_cast<float>(i % 3));
  }
  Dataset d(std::move(m), std::move(labels), Task::kMultiClass, 3);
  EXPECT_EQ(d.gradient_dim(), 3u);
}

TEST(DatasetTest, SplitTailPreservesOrderAndSizes) {
  Dataset d = MakeBinary(10);
  const auto [train, valid] = d.SplitTail(0.3);
  EXPECT_EQ(train.num_instances(), 7u);
  EXPECT_EQ(valid.num_instances(), 3u);
  EXPECT_EQ(train.labels()[6], d.labels()[6]);
  EXPECT_EQ(valid.labels()[0], d.labels()[7]);
  // Feature values follow the same rows.
  EXPECT_EQ(valid.matrix().RowValues(0)[0], 7.0f);
}

TEST(DatasetTest, SplitTailAlwaysLeavesBothSidesNonEmpty) {
  Dataset d = MakeBinary(2);
  const auto [train, valid] = d.SplitTail(0.01);
  EXPECT_EQ(train.num_instances(), 1u);
  EXPECT_EQ(valid.num_instances(), 1u);
}

TEST(DatasetTest, ValidateAcceptsGoodData) {
  EXPECT_TRUE(MakeBinary(5).Validate().ok());
}

TEST(DatasetTest, ValidateRejectsBadLabel) {
  CsrMatrix m;
  m.set_num_cols(1);
  m.StartRow();
  Dataset d(std::move(m), {5.0f}, Task::kBinary, 2);
  EXPECT_EQ(d.Validate().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, ValidateRejectsNonFiniteValue) {
  CsrMatrix m;
  m.set_num_cols(1);
  m.StartRow();
  m.PushEntry(0, std::numeric_limits<float>::infinity());
  Dataset d(std::move(m), {0.0f}, Task::kBinary, 2);
  EXPECT_EQ(d.Validate().code(), StatusCode::kCorruption);
}

TEST(DatasetTest, RegressionAllowsArbitraryLabels) {
  CsrMatrix m;
  m.set_num_cols(1);
  m.StartRow();
  Dataset d(std::move(m), {-3.7f}, Task::kRegression, 1);
  EXPECT_TRUE(d.Validate().ok());
  EXPECT_EQ(d.num_classes(), 1u);
}

TEST(TaskTest, Names) {
  EXPECT_STREQ(TaskToString(Task::kBinary), "binary");
  EXPECT_STREQ(TaskToString(Task::kMultiClass), "multiclass");
  EXPECT_STREQ(TaskToString(Task::kRegression), "regression");
}

}  // namespace
}  // namespace vero
