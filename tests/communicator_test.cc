#include "cluster/communicator.h"

#include <gtest/gtest.h>

namespace vero {
namespace {

TEST(CommunicatorTest, AllReduceSumsAcrossWorkers) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<double> data = {static_cast<double>(ctx.rank()), 1.0};
    ctx.AllReduceSum(data);
    EXPECT_DOUBLE_EQ(data[0], 0 + 1 + 2 + 3);
    EXPECT_DOUBLE_EQ(data[1], 4.0);
  });
}

TEST(CommunicatorTest, AllReduceRepeatedCalls) {
  Cluster cluster(3);
  cluster.Run([](WorkerContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      std::vector<double> data = {1.0 * round, -1.0};
      ctx.AllReduceSum(data);
      ASSERT_DOUBLE_EQ(data[0], 3.0 * round);
      ASSERT_DOUBLE_EQ(data[1], -3.0);
    }
  });
}

TEST(CommunicatorTest, ReduceScatterOwnsCorrectSlice) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<double> data(10);
    for (size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<double>(i) * (ctx.rank() + 1);
    }
    ctx.ReduceScatterSum(data);
    const size_t begin = ctx.SliceBegin(10, ctx.rank());
    const size_t end = ctx.SliceEnd(10, ctx.rank());
    for (size_t i = begin; i < end; ++i) {
      // Sum over workers of i * (r+1) = i * 10.
      EXPECT_DOUBLE_EQ(data[i], i * 10.0);
    }
  });
}

TEST(CommunicatorTest, SlicesTileTheRange) {
  Cluster cluster(3);
  cluster.Run([](WorkerContext& ctx) {
    size_t covered = 0;
    for (int r = 0; r < ctx.world_size(); ++r) {
      EXPECT_EQ(ctx.SliceBegin(11, r), covered);
      covered = ctx.SliceEnd(11, r);
    }
    EXPECT_EQ(covered, 11u);
  });
}

TEST(CommunicatorTest, AllGatherDeliversEveryContribution) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<uint8_t> mine(ctx.rank() + 1,
                              static_cast<uint8_t>(ctx.rank()));
    std::vector<std::vector<uint8_t>> all;
    ctx.AllGather(mine, &all);
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r) {
      ASSERT_EQ(all[r].size(), static_cast<size_t>(r + 1));
      EXPECT_EQ(all[r][0], r);
    }
  });
}

TEST(CommunicatorTest, BroadcastFromEveryRoot) {
  Cluster cluster(3);
  cluster.Run([](WorkerContext& ctx) {
    for (int root = 0; root < 3; ++root) {
      std::vector<uint8_t> data;
      if (ctx.rank() == root) data = {1, 2, 3, static_cast<uint8_t>(root)};
      ctx.Broadcast(&data, root);
      ASSERT_EQ(data.size(), 4u);
      EXPECT_EQ(data[3], root);
    }
  });
}

TEST(CommunicatorTest, GatherOnlyRootReceives) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<uint8_t> mine = {static_cast<uint8_t>(ctx.rank() * 10)};
    std::vector<std::vector<uint8_t>> all;
    ctx.Gather(mine, 2, &all);
    if (ctx.rank() == 2) {
      ASSERT_EQ(all.size(), 4u);
      for (int r = 0; r < 4; ++r) EXPECT_EQ(all[r][0], r * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST(CommunicatorTest, AllToAllPersonalizedExchange) {
  Cluster cluster(3);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<std::vector<uint8_t>> to(3);
    for (int dest = 0; dest < 3; ++dest) {
      to[dest] = {static_cast<uint8_t>(ctx.rank()),
                  static_cast<uint8_t>(dest)};
    }
    std::vector<std::vector<uint8_t>> from;
    ctx.AllToAll(std::move(to), &from);
    ASSERT_EQ(from.size(), 3u);
    for (int src = 0; src < 3; ++src) {
      ASSERT_EQ(from[src].size(), 2u);
      EXPECT_EQ(from[src][0], src);
      EXPECT_EQ(from[src][1], ctx.rank());
    }
  });
}

TEST(CommunicatorTest, ByteAccountingMatchesRingFormulas) {
  const size_t n = 1000;
  Cluster cluster(4);
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<double> data(n, 1.0);
    ctx.AllReduceSum(data);
  });
  const uint64_t bytes = n * sizeof(double);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.worker_stats(r).bytes_sent, 2 * bytes * 3 / 4);
    EXPECT_EQ(cluster.worker_stats(r).num_ops, 1u);
  }

  cluster.ResetStats();
  cluster.Run([&](WorkerContext& ctx) {
    std::vector<double> data(n, 1.0);
    ctx.ReduceScatterSum(data);
  });
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.worker_stats(r).bytes_sent, bytes * 3 / 4);
  }
}

TEST(CommunicatorTest, BroadcastChargesRootTimesWMinus1) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<uint8_t> data;
    if (ctx.rank() == 1) data.assign(100, 7);
    ctx.Broadcast(&data, 1);
  });
  EXPECT_EQ(cluster.worker_stats(1).bytes_sent, 300u);
  EXPECT_EQ(cluster.worker_stats(0).bytes_received, 100u);
  EXPECT_EQ(cluster.worker_stats(0).bytes_sent, 0u);
}

TEST(CommunicatorTest, SimulatedTimeFollowsModel) {
  NetworkModel model;
  model.latency_seconds = 0.5;
  model.bandwidth_bytes_per_second = 1000.0;
  Cluster cluster(2, model);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<uint8_t> data;
    if (ctx.rank() == 0) data.assign(2000, 1);
    ctx.Broadcast(&data, 0);
  });
  // Root sends 2000 bytes to 1 peer: 0.5 + 2000/1000 = 2.5s.
  EXPECT_NEAR(cluster.worker_stats(0).sim_seconds, 2.5, 1e-9);
  EXPECT_NEAR(cluster.worker_stats(1).sim_seconds, 2.5, 1e-9);
  EXPECT_NEAR(cluster.MaxSimSeconds(), 2.5, 1e-9);
}

TEST(CommunicatorTest, SingleWorkerOpsAreFreeAndCorrect) {
  Cluster cluster(1);
  cluster.Run([](WorkerContext& ctx) {
    std::vector<double> data = {5.0};
    ctx.AllReduceSum(data);
    EXPECT_DOUBLE_EQ(data[0], 5.0);
    std::vector<uint8_t> payload = {9};
    ctx.Broadcast(&payload, 0);
    EXPECT_EQ(payload[0], 9);
    std::vector<std::vector<uint8_t>> all;
    ctx.AllGather(payload, &all);
    EXPECT_EQ(all.size(), 1u);
  });
  EXPECT_EQ(cluster.TotalStats().bytes_sent, 0u);
  EXPECT_DOUBLE_EQ(cluster.TotalStats().sim_seconds, 0.0);
}

TEST(CommunicatorTest, InstrumentMaxAndSumAreUncharged) {
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    const double m = ctx.InstrumentMax(static_cast<double>(ctx.rank()));
    EXPECT_DOUBLE_EQ(m, 3.0);
    const double s = ctx.InstrumentSum(1.5);
    EXPECT_DOUBLE_EQ(s, 6.0);
  });
  EXPECT_EQ(cluster.TotalStats().bytes_sent, 0u);
  EXPECT_EQ(cluster.TotalStats().num_ops, 0u);
}

TEST(CommunicatorTest, MixedSequenceStaysConsistent) {
  // Interleave different collectives repeatedly to shake out rendezvous
  // reuse bugs.
  Cluster cluster(4);
  cluster.Run([](WorkerContext& ctx) {
    for (int round = 0; round < 10; ++round) {
      std::vector<double> sums = {1.0};
      ctx.AllReduceSum(sums);
      ASSERT_DOUBLE_EQ(sums[0], 4.0);

      std::vector<uint8_t> payload = {static_cast<uint8_t>(round)};
      ctx.Broadcast(&payload, round % 4);
      ASSERT_EQ(payload[0], round);

      std::vector<std::vector<uint8_t>> all;
      ctx.AllGather(payload, &all);
      ASSERT_EQ(all.size(), 4u);

      ctx.Barrier();
    }
  });
}

TEST(CommStatsTest, Arithmetic) {
  CommStats a{100, 50, 2, 1.0};
  CommStats b{10, 5, 1, 0.25};
  a += b;
  EXPECT_EQ(a.bytes_sent, 110u);
  const CommStats d = a - b;
  EXPECT_EQ(d.bytes_sent, 100u);
  EXPECT_DOUBLE_EQ(d.sim_seconds, 1.0);
}

TEST(NetworkModelTest, PresetsAndOpSeconds) {
  const NetworkModel lab = NetworkModel::Lab1Gbps();
  EXPECT_DOUBLE_EQ(lab.bandwidth_bytes_per_second, 125e6);
  const NetworkModel prod = NetworkModel::Production10Gbps();
  EXPECT_GT(prod.bandwidth_bytes_per_second,
            lab.bandwidth_bytes_per_second);
  // max(sent, received) drives the wire time.
  EXPECT_DOUBLE_EQ(lab.OpSeconds(125000000, 0), lab.latency_seconds + 1.0);
  EXPECT_DOUBLE_EQ(lab.OpSeconds(0, 125000000), lab.latency_seconds + 1.0);
}

}  // namespace
}  // namespace vero
