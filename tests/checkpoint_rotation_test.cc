// Rotated checkpoint chain: manifest wire format, the CheckpointWriter's
// rotation/GC and async double-buffering, and LoadLatestCheckpoint's
// fallback ladder under fuzz-style damage (truncated manifest, missing
// rotated files, CRC-corrupted chain) — the loader restores the newest
// valid state, returns kCorruption only when nothing survives, and never
// crashes. The ManifestEmit fixture is driven by scripts/check_manifest.py
// (the check_manifest ctest) to validate the on-disk schema externally.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <gtest/gtest.h>
#include <string>
#include <vector>

#include "quadrants/checkpoint.h"
#include "sketch/candidate_splits.h"

namespace vero {
namespace {

namespace fs = std::filesystem;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

GbdtModel ModelWithTrees(uint32_t n) {
  GbdtModel model(Task::kBinary, 2, 0.3);
  for (uint32_t i = 0; i < n; ++i) {
    Tree t(3, 1);
    t.SetSplit(0, i % 7, 1.5f + static_cast<float>(i), 2, false, 3.0);
    t.SetLeaf(1, {-0.5f});
    t.SetLeaf(2, {0.5f});
    model.AddTree(std::move(t));
  }
  return model;
}

CandidateSplits TinySplits() {
  return CandidateSplits(16, {{0.5f, 1.5f}, {}, {2.0f, 3.0f}});
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Commits `n` checkpoints (trees_done = 1..n) through a sync writer.
void FillChain(const std::string& dir, uint32_t n, uint32_t keep_last_n) {
  CheckpointWriter::Options options;
  options.dir = dir;
  options.keep_last_n = keep_last_n;
  CheckpointWriter writer(options);
  const CandidateSplits splits = TinySplits();
  for (uint32_t t = 1; t <= n; ++t) {
    writer.Submit(ModelWithTrees(t), t, &splits);
  }
  ASSERT_TRUE(writer.write_status().ok())
      << writer.write_status().ToString();
}

// ---------------------------------------------------------------------------
// Manifest wire format.
// ---------------------------------------------------------------------------

TEST(ManifestTest, SerializeDeserializeRoundTrip) {
  CheckpointManifest manifest;
  manifest.entries.push_back({"ckpt-000004.vckp", 5, 123, 0xdeadbeef});
  manifest.entries.push_back({"ckpt-000005.vckp", 6, 456, 0x01020304});
  const std::vector<uint8_t> bytes = SerializeManifest(manifest);

  CheckpointManifest out;
  ASSERT_TRUE(DeserializeManifest(bytes, &out).ok());
  ASSERT_EQ(out.entries.size(), 2u);
  EXPECT_EQ(out.entries[0].file, "ckpt-000004.vckp");
  EXPECT_EQ(out.entries[0].trees_done, 5u);
  EXPECT_EQ(out.entries[0].bytes, 123u);
  EXPECT_EQ(out.entries[0].crc32, 0xdeadbeefu);
  EXPECT_EQ(out.entries[1].file, "ckpt-000005.vckp");
}

TEST(ManifestTest, EmptyManifestRoundTrips) {
  CheckpointManifest out;
  ASSERT_TRUE(DeserializeManifest(SerializeManifest({}), &out).ok());
  EXPECT_TRUE(out.entries.empty());
}

// Fuzz-style: every single-bit flip and every truncation of a valid
// manifest is rejected as kCorruption — never a crash, never a bogus parse.
TEST(ManifestTest, AllBitFlipsAndTruncationsAreCorruption) {
  CheckpointManifest manifest;
  manifest.entries.push_back({"ckpt-000000.vckp", 1, 64, 7});
  manifest.entries.push_back({"ckpt-000001.vckp", 2, 96, 9});
  const std::vector<uint8_t> good = SerializeManifest(manifest);

  CheckpointManifest out;
  for (size_t offset = 0; offset < good.size(); ++offset) {
    std::vector<uint8_t> bad = good;
    bad[offset] ^= static_cast<uint8_t>(1u << (offset % 8));
    EXPECT_EQ(DeserializeManifest(bad, &out).code(), StatusCode::kCorruption)
        << "offset " << offset;
  }
  for (size_t len = 0; len < good.size(); ++len) {
    const std::vector<uint8_t> bad(good.begin(), good.begin() + len);
    EXPECT_EQ(DeserializeManifest(bad, &out).code(), StatusCode::kCorruption)
        << "len " << len;
  }
}

// ---------------------------------------------------------------------------
// Writer: rotation, adoption, async draining.
// ---------------------------------------------------------------------------

TEST(CheckpointWriterTest, RotationKeepsLastN) {
  const std::string dir = FreshDir("rotation_keeps_last_n");
  FillChain(dir, 5, /*keep_last_n=*/2);

  // Only the two newest chain files survive GC; the alias tracks the head.
  EXPECT_FALSE(fs::exists(dir + "/ckpt-000000.vckp"));
  EXPECT_FALSE(fs::exists(dir + "/ckpt-000001.vckp"));
  EXPECT_FALSE(fs::exists(dir + "/ckpt-000002.vckp"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt-000003.vckp"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt-000004.vckp"));
  EXPECT_TRUE(fs::exists(dir + "/latest.vckp"));

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[0].file, "ckpt-000003.vckp");
  EXPECT_EQ(manifest->entries[1].file, "ckpt-000004.vckp");
  EXPECT_EQ(manifest->entries[1].trees_done, 5u);

  const auto latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->trees_done, 5u);
  EXPECT_EQ(latest->model.num_trees(), 5u);
}

TEST(CheckpointWriterTest, ZeroKeepLastNDisablesGc) {
  const std::string dir = FreshDir("no_gc");
  FillChain(dir, 4, /*keep_last_n=*/0);
  for (uint32_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(fs::exists(dir + "/ckpt-00000" + std::to_string(i) + ".vckp"));
  }
  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->entries.size(), 4u);
}

// A new writer over an existing directory continues the chain instead of
// clobbering it (recovery attempts reuse the dir across incarnations).
TEST(CheckpointWriterTest, AdoptsExistingChainAndContinuesNumbering) {
  const std::string dir = FreshDir("adopt_chain");
  FillChain(dir, 3, /*keep_last_n=*/4);
  FillChain(dir, 2, /*keep_last_n=*/4);  // Writes ckpt-000003/000004.

  EXPECT_TRUE(fs::exists(dir + "/ckpt-000003.vckp"));
  EXPECT_TRUE(fs::exists(dir + "/ckpt-000004.vckp"));
  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok());
  ASSERT_EQ(manifest->entries.size(), 4u);
  EXPECT_EQ(manifest->entries.back().file, "ckpt-000004.vckp");
  // The second writer's last submit had trees_done = 2.
  const auto latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->trees_done, 2u);
}

TEST(CheckpointWriterTest, AsyncWriterDrainsOnFlushAndDestruction) {
  const std::string dir = FreshDir("async_drain");
  CandidateSplits splits = TinySplits();
  {
    CheckpointWriter::Options options;
    options.dir = dir;
    options.async = true;
    options.keep_last_n = 3;
    CheckpointWriter writer(options);
    // Rapid-fire submissions: backpressure may coalesce intermediates
    // (newest wins), but after Flush the newest must be fully committed.
    for (uint32_t t = 1; t <= 8; ++t) {
      writer.Submit(ModelWithTrees(t), t, &splits);
    }
    writer.Flush();
    const auto latest = writer.Latest();
    ASSERT_TRUE(latest.has_value());
    EXPECT_EQ(latest->trees_done, 8u);
    ASSERT_TRUE(writer.write_status().ok());

    // More work after Flush: the destructor must drain it.
    writer.Submit(ModelWithTrees(9), 9, &splits);
  }
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 9u);
}

TEST(CheckpointWriterTest, InMemoryOnlyWhenDirEmpty) {
  CheckpointWriter writer(CheckpointWriter::Options{});
  EXPECT_FALSE(writer.Latest().has_value());
  const CandidateSplits splits = TinySplits();
  writer.Submit(ModelWithTrees(3), 3, &splits);
  const auto latest = writer.Latest();
  ASSERT_TRUE(latest.has_value());
  EXPECT_EQ(latest->trees_done, 3u);
  ASSERT_TRUE(latest->has_splits);
  EXPECT_TRUE(latest->splits == splits);
}

// ---------------------------------------------------------------------------
// Loader fallback ladder under damage.
// ---------------------------------------------------------------------------

TEST(LoadLatestTest, EmptyDirectoryIsNotFound) {
  const std::string dir = FreshDir("load_empty");
  EXPECT_EQ(LoadLatestCheckpoint(dir).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(LoadLatestCheckpoint(dir + "/does_not_exist").status().code(),
            StatusCode::kNotFound);
}

TEST(LoadLatestTest, TruncatedManifestFallsBackToDirectoryScan) {
  const std::string dir = FreshDir("load_truncated_manifest");
  FillChain(dir, 4, /*keep_last_n=*/3);

  const std::string manifest_path = dir + "/" + kManifestFileName;
  std::vector<uint8_t> bytes = ReadFile(manifest_path);
  bytes.resize(bytes.size() / 2);
  WriteFile(manifest_path, bytes);

  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 4u);
}

TEST(LoadLatestTest, MissingRotatedFileSkipsToNextEntry) {
  const std::string dir = FreshDir("load_missing_file");
  FillChain(dir, 3, /*keep_last_n=*/3);

  // Newest chain file vanishes (manifest still lists it); loader must fall
  // back to the next-newest entry rather than fail.
  fs::remove(dir + "/ckpt-000002.vckp");
  fs::remove(dir + "/latest.vckp");  // Alias would mask the fallback.
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 2u);
}

TEST(LoadLatestTest, CrcDamagedNewestFallsBackToNewestValid) {
  const std::string dir = FreshDir("load_crc_damage");
  FillChain(dir, 3, /*keep_last_n=*/3);

  // Flip one payload byte of the newest chain file (and the alias, which
  // duplicates it): the manifest's whole-file CRC cross-check must reject
  // it and restore the second-newest instead.
  for (const char* name : {"ckpt-000002.vckp", "latest.vckp"}) {
    const std::string path = dir + "/" + name;
    std::vector<uint8_t> bytes = ReadFile(path);
    ASSERT_GT(bytes.size(), 16u);
    bytes[12] ^= 0x40;
    WriteFile(path, bytes);
  }
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 2u);
  EXPECT_EQ(loaded->model.num_trees(), 2u);
}

TEST(LoadLatestTest, AllCandidatesDamagedIsCorruptionNeverCrash) {
  const std::string dir = FreshDir("load_all_damaged");
  FillChain(dir, 3, /*keep_last_n=*/3);

  for (const auto& entry : fs::directory_iterator(dir)) {
    std::vector<uint8_t> bytes = ReadFile(entry.path().string());
    if (bytes.size() > 8) bytes[bytes.size() / 2] ^= 0xff;
    bytes.resize(bytes.size() - 3);
    WriteFile(entry.path().string(), bytes);
  }
  EXPECT_EQ(LoadLatestCheckpoint(dir).status().code(),
            StatusCode::kCorruption);
}

TEST(LoadLatestTest, StaleTmpFilesAreIgnored) {
  const std::string dir = FreshDir("load_stale_tmp");
  FillChain(dir, 2, /*keep_last_n=*/3);

  // Simulated crash mid-commit: stray .tmp siblings with garbage content.
  WriteFile(dir + "/ckpt-000009.vckp.tmp", {1, 2, 3});
  WriteFile(dir + "/" + std::string(kManifestFileName) + ".tmp", {4, 5});
  const auto loaded = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trees_done, 2u);
}

// ---------------------------------------------------------------------------
// Emitter fixture for scripts/check_manifest.py (the check_manifest ctest).
// Writes a rotated chain into VERO_CKPT_EMIT_DIR when set (a fresh temp dir
// otherwise) and sanity-checks it locally either way.
// ---------------------------------------------------------------------------

TEST(ManifestEmitTest, WritesRotatedChainForSchemaCheck) {
  const char* emit_dir = std::getenv("VERO_CKPT_EMIT_DIR");
  const std::string dir =
      emit_dir != nullptr ? std::string(emit_dir) : FreshDir("manifest_emit");
  fs::create_directories(dir);
  FillChain(dir, 5, /*keep_last_n=*/3);

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->entries.size(), 3u);
  for (const ManifestEntry& entry : manifest->entries) {
    EXPECT_TRUE(fs::exists(dir + "/" + entry.file));
    EXPECT_EQ(fs::file_size(dir + "/" + entry.file), entry.bytes);
  }
  const auto latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(latest->trees_done, 5u);
}

// Same external-schema contract for a delta-mode chain: written into the
// "delta" subdirectory of the emit dir so check_manifest.py validates the
// v2 manifest's kind/base_trees columns and the VCKD framing.
TEST(ManifestEmitTest, WritesDeltaChainForSchemaCheck) {
  const char* emit_dir = std::getenv("VERO_CKPT_EMIT_DIR");
  const std::string dir =
      (emit_dir != nullptr ? std::string(emit_dir)
                           : FreshDir("manifest_emit_delta_base")) +
      "/delta";
  fs::create_directories(dir);
  {
    CheckpointWriter::Options options;
    options.dir = dir;
    options.keep_last_n = 4;
    options.delta = true;
    options.full_every = 3;
    CheckpointWriter writer(options);
    const CandidateSplits splits = TinySplits();
    for (uint32_t t = 1; t <= 6; ++t) {
      writer.Submit(ModelWithTrees(t), t, &splits);
    }
    ASSERT_TRUE(writer.write_status().ok())
        << writer.write_status().ToString();
  }

  const auto manifest = LoadManifest(dir + "/" + kManifestFileName);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_GE(manifest->entries.size(), 2u);
  EXPECT_EQ(manifest->entries[0].kind, kManifestEntryFull);
  bool saw_delta = false;
  for (const ManifestEntry& entry : manifest->entries) {
    saw_delta = saw_delta || entry.kind == kManifestEntryDelta;
  }
  EXPECT_TRUE(saw_delta);
  const auto latest = LoadLatestCheckpoint(dir);
  ASSERT_TRUE(latest.ok()) << latest.status().ToString();
  EXPECT_EQ(latest->trees_done, 6u);
}

}  // namespace
}  // namespace vero
