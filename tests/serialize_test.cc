#include "common/serialize.h"

#include <gtest/gtest.h>

namespace vero {
namespace {

TEST(SerializeTest, ScalarRoundTrip) {
  ByteWriter w;
  w.WriteU8(0xAB);
  w.WriteU16(0xBEEF);
  w.WriteU32(0xDEADBEEF);
  w.WriteU64(0x0123456789ABCDEFull);
  w.WriteI32(-42);
  w.WriteI64(-1234567890123LL);
  w.WriteF32(3.5f);
  w.WriteF64(-2.25);
  w.WriteBool(true);
  w.WriteBool(false);

  ByteReader r(w.data());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  float f32;
  double f64;
  bool b1, b2;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU16(&u16).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadF32(&f32).ok());
  ASSERT_TRUE(r.ReadF64(&f64).ok());
  ASSERT_TRUE(r.ReadBool(&b1).ok());
  ASSERT_TRUE(r.ReadBool(&b2).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1234567890123LL);
  EXPECT_EQ(f32, 3.5f);
  EXPECT_EQ(f64, -2.25);
  EXPECT_TRUE(b1);
  EXPECT_FALSE(b2);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializeTest, StringRoundTrip) {
  ByteWriter w;
  w.WriteString("hello");
  w.WriteString("");
  w.WriteString(std::string("bin\0ary", 7));
  ByteReader r(w.data());
  std::string a, b, c;
  ASSERT_TRUE(r.ReadString(&a).ok());
  ASSERT_TRUE(r.ReadString(&b).ok());
  ASSERT_TRUE(r.ReadString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string("bin\0ary", 7));
}

TEST(SerializeTest, VectorRoundTrip) {
  ByteWriter w;
  std::vector<float> floats = {1.5f, -2.0f, 0.0f};
  std::vector<uint64_t> empty;
  w.WriteVector(floats);
  w.WriteVector(empty);
  ByteReader r(w.data());
  std::vector<float> f2;
  std::vector<uint64_t> e2 = {9};
  ASSERT_TRUE(r.ReadVector(&f2).ok());
  ASSERT_TRUE(r.ReadVector(&e2).ok());
  EXPECT_EQ(f2, floats);
  EXPECT_TRUE(e2.empty());
}

TEST(SerializeTest, TruncatedScalarFails) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.data());
  uint32_t v;
  EXPECT_EQ(r.ReadU32(&v).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedVectorFails) {
  ByteWriter w;
  w.WriteU64(1000);  // Claims 1000 elements but provides none.
  ByteReader r(w.data());
  std::vector<double> v;
  EXPECT_EQ(r.ReadVector(&v).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TruncatedStringFails) {
  ByteWriter w;
  w.WriteU32(100);
  w.WriteU8('x');
  ByteReader r(w.data());
  std::string s;
  EXPECT_EQ(r.ReadString(&s).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, SkipAdvances) {
  ByteWriter w;
  w.WriteU32(1);
  w.WriteU32(2);
  ByteReader r(w.data());
  ASSERT_TRUE(r.Skip(4).ok());
  uint32_t v;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  EXPECT_EQ(v, 2u);
  EXPECT_EQ(r.Skip(1).code(), StatusCode::kOutOfRange);
}

TEST(SerializeTest, TakeDataMovesBuffer) {
  ByteWriter w;
  w.WriteU32(5);
  std::vector<uint8_t> data = w.TakeData();
  EXPECT_EQ(data.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

TEST(SerializeTest, RawWrite) {
  ByteWriter w;
  const char payload[] = {1, 2, 3};
  w.WriteRaw(payload, 3);
  EXPECT_EQ(w.size(), 3u);
  ByteReader r(w.data());
  char out[3];
  ASSERT_TRUE(r.ReadRaw(out, 3).ok());
  EXPECT_EQ(out[2], 3);
}

TEST(SerializeTest, PositionAndRemaining) {
  ByteWriter w;
  w.WriteU64(0);
  ByteReader r(w.data());
  EXPECT_EQ(r.remaining(), 8u);
  uint32_t v;
  ASSERT_TRUE(r.ReadU32(&v).ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_EQ(r.remaining(), 4u);
  EXPECT_FALSE(r.AtEnd());
}

TEST(SerializeTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            (1ull << 7) - 1,
                            (1ull << 7),
                            (1ull << 7) + 1,
                            (1ull << 14) - 1,
                            (1ull << 14),
                            (1ull << 21),
                            (1ull << 28),
                            (1ull << 35),
                            (1ull << 42),
                            (1ull << 49),
                            (1ull << 56),
                            (1ull << 63) - 1,
                            (1ull << 63),
                            (1ull << 63) + 1,
                            UINT64_MAX - 1,
                            UINT64_MAX};
  for (uint64_t v : cases) {
    uint8_t buf[kMaxVarint64Bytes];
    const size_t len = PutVarint64(buf, v);
    ASSERT_GE(len, 1u);
    ASSERT_LE(len, kMaxVarint64Bytes);
    uint64_t out = 0;
    size_t consumed = 0;
    ASSERT_TRUE(GetVarint64(buf, len, &out, &consumed).ok()) << v;
    EXPECT_EQ(out, v);
    EXPECT_EQ(consumed, len);
  }
}

TEST(SerializeTest, VarintEncodedLengths) {
  uint8_t buf[kMaxVarint64Bytes];
  EXPECT_EQ(PutVarint64(buf, 0), 1u);
  EXPECT_EQ(PutVarint64(buf, 127), 1u);
  EXPECT_EQ(PutVarint64(buf, 128), 2u);
  EXPECT_EQ(PutVarint64(buf, (1ull << 14) - 1), 2u);
  EXPECT_EQ(PutVarint64(buf, 1ull << 14), 3u);
  EXPECT_EQ(PutVarint64(buf, (1ull << 63)), 10u);
  EXPECT_EQ(PutVarint64(buf, UINT64_MAX), 10u);
}

TEST(SerializeTest, VarintTruncatedAndOverflow) {
  uint8_t buf[kMaxVarint64Bytes];
  const size_t len = PutVarint64(buf, UINT64_MAX);
  uint64_t out = 0;
  size_t consumed = 0;
  // Every strict prefix must be rejected as truncated.
  for (size_t n = 0; n < len; ++n) {
    EXPECT_FALSE(GetVarint64(buf, n, &out, &consumed).ok()) << n;
  }
  // 10 continuation bytes never terminate: reject as overflow, not truncation.
  uint8_t runaway[kMaxVarint64Bytes];
  std::memset(runaway, 0x80, sizeof(runaway));
  EXPECT_FALSE(GetVarint64(runaway, sizeof(runaway), &out, &consumed).ok());
  // A 10-byte encoding whose final byte carries more than bit 63 overflows.
  uint8_t wide[kMaxVarint64Bytes];
  std::memset(wide, 0x80, sizeof(wide));
  wide[kMaxVarint64Bytes - 1] = 0x02;
  EXPECT_FALSE(GetVarint64(wide, sizeof(wide), &out, &consumed).ok());
}

TEST(SerializeTest, VarintViaWriterReader) {
  ByteWriter w;
  const uint64_t values[] = {0, 1, 300, 1ull << 40, UINT64_MAX};
  for (uint64_t v : values) w.WriteVarint64(v);
  ByteReader r(w.data());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(r.ReadVarint64(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(r.AtEnd());
  uint64_t out = 0;
  EXPECT_FALSE(r.ReadVarint64(&out).ok());
}

TEST(SerializeTest, ZigZagRoundTrip) {
  const int64_t cases[] = {0,
                           -1,
                           1,
                           -2,
                           2,
                           63,
                           -64,
                           64,
                           INT64_MAX,
                           INT64_MIN,
                           INT64_MIN + 1};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode64(ZigZagEncode64(v)), v) << v;
  }
  // Small magnitudes of either sign map to small codes (short varints).
  EXPECT_EQ(ZigZagEncode64(0), 0u);
  EXPECT_EQ(ZigZagEncode64(-1), 1u);
  EXPECT_EQ(ZigZagEncode64(1), 2u);
  EXPECT_EQ(ZigZagEncode64(-2), 3u);
  EXPECT_EQ(ZigZagEncode64(2), 4u);
}

}  // namespace
}  // namespace vero
