#include "partition/transform.h"

#include <gtest/gtest.h>
#include <map>

#include "core/binned.h"
#include "data/synthetic.h"

namespace vero {
namespace {

Dataset MakeData(uint32_t n = 500, uint32_t d = 40, uint32_t c = 2,
                 uint64_t seed = 51) {
  SyntheticConfig config;
  config.num_instances = n;
  config.num_features = d;
  config.num_classes = c;
  config.density = 0.3;
  config.seed = seed;
  return GenerateSynthetic(config);
}

std::vector<Dataset> ShardRows(const Dataset& data, int w) {
  std::vector<Dataset> shards;
  for (int r = 0; r < w; ++r) {
    const auto [begin, end] = HorizontalRange(data.num_instances(), w, r);
    shards.emplace_back(
        data.matrix().SliceRows(begin, end),
        std::vector<float>(data.labels().begin() + begin,
                           data.labels().begin() + end),
        data.task(), data.num_classes());
  }
  return shards;
}

TEST(HorizontalRangeTest, TilesInstanceSpace) {
  uint32_t covered = 0;
  for (int r = 0; r < 4; ++r) {
    const auto [begin, end] = HorizontalRange(103, 4, r);
    EXPECT_EQ(begin, covered);
    covered = end;
    EXPECT_GE(end, begin);
  }
  EXPECT_EQ(covered, 103u);
}

TEST(DistributedSplitsTest, MatchSingleNodePipelineAtW1) {
  const Dataset data = MakeData();
  Cluster cluster(1);
  CandidateSplits dist;
  cluster.Run([&](WorkerContext& ctx) {
    dist = BuildDistributedCandidateSplits(ctx, data, 16, 256, nullptr);
  });
  const CandidateSplits local = ProposeCandidateSplits(data, 16, 256);
  EXPECT_TRUE(dist == local);
}

TEST(DistributedSplitsTest, AllWorkersAgreeAndCountsAreExact) {
  const Dataset data = MakeData();
  const int w = 4;
  const auto shards = ShardRows(data, w);
  Cluster cluster(w);
  std::vector<CandidateSplits> splits(w);
  std::vector<std::vector<uint64_t>> counts(w);
  cluster.Run([&](WorkerContext& ctx) {
    splits[ctx.rank()] = BuildDistributedCandidateSplits(
        ctx, shards[ctx.rank()], 16, 256, &counts[ctx.rank()]);
  });
  for (int r = 1; r < w; ++r) {
    EXPECT_TRUE(splits[r] == splits[0]) << "worker " << r;
    EXPECT_EQ(counts[r], counts[0]);
  }
  // Counts must be the exact per-feature nonzero totals.
  std::vector<uint64_t> expected(data.num_features(), 0);
  for (FeatureId f : data.matrix().features()) ++expected[f];
  EXPECT_EQ(counts[0], expected);
}

class TransformEncodingTest
    : public ::testing::TestWithParam<TransformEncoding> {};

TEST_P(TransformEncodingTest, VerticalShardMatchesDirectBinning) {
  const Dataset data = MakeData();
  const int w = 3;
  const auto shards = ShardRows(data, w);
  Cluster cluster(w);
  std::vector<VerticalShard> verticals(w);
  TransformOptions options;
  options.num_candidate_splits = 16;
  options.encoding = GetParam();
  cluster.Run([&](WorkerContext& ctx) {
    verticals[ctx.rank()] =
        HorizontalToVertical(ctx, shards[ctx.rank()], options);
  });

  // Reference binning of the full dataset under the shared split table.
  const CandidateSplits& splits = verticals[0].splits;
  const BinnedRowStore reference =
      BinnedRowStore::FromCsr(data.matrix(), splits);

  // Ownership covers every feature exactly once.
  std::vector<int> seen(data.num_features(), 0);
  for (int r = 0; r < w; ++r) {
    EXPECT_EQ(verticals[r].feature_owner, verticals[0].feature_owner);
    for (FeatureId f : verticals[r].owned_features) {
      EXPECT_EQ(verticals[r].feature_owner[f], r);
      ++seen[f];
    }
    EXPECT_EQ(verticals[r].num_instances, data.num_instances());
    EXPECT_EQ(verticals[r].labels, data.labels());
    EXPECT_LE(verticals[r].data.num_blocks(), options.max_blocks);
  }
  for (FeatureId f = 0; f < data.num_features(); ++f) {
    EXPECT_EQ(seen[f], 1) << "feature " << f;
  }

  // Every (instance, feature, bin) triple must survive the transform.
  for (int r = 0; r < w; ++r) {
    const VerticalShard& v = verticals[r];
    uint64_t checked = 0;
    for (InstanceId i = 0; i < data.num_instances(); ++i) {
      auto local_features = v.data.RowFeatures(i);
      auto local_bins = v.data.RowBins(i);
      for (size_t k = 0; k < local_features.size(); ++k) {
        const FeatureId global_f = v.owned_features[local_features[k]];
        const auto expected = reference.FindBin(i, global_f);
        ASSERT_TRUE(expected.has_value())
            << "instance " << i << " feature " << global_f;
        EXPECT_EQ(local_bins[k], *expected);
        ++checked;
      }
    }
    // Entry conservation: worker r holds exactly the entries of its
    // features.
    uint64_t expected_entries = 0;
    for (FeatureId f : data.matrix().features()) {
      if (v.feature_owner[f] == r) ++expected_entries;
    }
    EXPECT_EQ(checked, expected_entries);
  }
}

INSTANTIATE_TEST_SUITE_P(Encodings, TransformEncodingTest,
                         ::testing::Values(TransformEncoding::kNaive,
                                           TransformEncoding::kCompressed,
                                           TransformEncoding::kBlockified));

TEST(TransformTest, CompressionShrinksRepartitionBytes) {
  const Dataset data = MakeData(800, 60);
  const int w = 4;
  const auto shards = ShardRows(data, w);
  std::map<TransformEncoding, uint64_t> bytes;
  for (TransformEncoding e :
       {TransformEncoding::kNaive, TransformEncoding::kCompressed,
        TransformEncoding::kBlockified}) {
    Cluster cluster(w);
    TransformOptions options;
    options.encoding = e;
    std::vector<uint64_t> sent(w, 0);
    cluster.Run([&](WorkerContext& ctx) {
      const VerticalShard v =
          HorizontalToVertical(ctx, shards[ctx.rank()], options);
      sent[ctx.rank()] = v.stats.repartition_bytes_sent;
    });
    uint64_t total = 0;
    for (uint64_t s : sent) total += s;
    bytes[e] = total;
  }
  // Naive (12 B/entry + per-row overhead) > compressed (2 B/entry +
  // per-row overhead) > blockified (2 B/entry + flat arrays).
  EXPECT_GT(bytes[TransformEncoding::kNaive],
            2 * bytes[TransformEncoding::kCompressed]);
  EXPECT_GT(bytes[TransformEncoding::kCompressed],
            bytes[TransformEncoding::kBlockified]);
}

TEST(TransformTest, GroupingStrategiesAllProduceValidShards) {
  const Dataset data = MakeData(300, 30);
  const int w = 3;
  const auto shards = ShardRows(data, w);
  for (auto strategy :
       {ColumnGroupingStrategy::kGreedyBalance,
        ColumnGroupingStrategy::kRoundRobin, ColumnGroupingStrategy::kRange}) {
    Cluster cluster(w);
    TransformOptions options;
    options.grouping = strategy;
    std::vector<uint64_t> entries(w, 0);
    cluster.Run([&](WorkerContext& ctx) {
      const VerticalShard v =
          HorizontalToVertical(ctx, shards[ctx.rank()], options);
      entries[ctx.rank()] = v.data.num_entries();
    });
    uint64_t total = 0;
    for (uint64_t e : entries) total += e;
    EXPECT_EQ(total, data.num_nonzeros())
        << ColumnGroupingStrategyToString(strategy);
  }
}

TEST(TransformTest, GreedyGroupingBalancesEntries) {
  const Dataset data = MakeData(2000, 100, 2, 77);
  const int w = 4;
  const auto shards = ShardRows(data, w);
  Cluster cluster(w);
  TransformOptions options;
  options.grouping = ColumnGroupingStrategy::kGreedyBalance;
  std::vector<uint64_t> entries(w, 0);
  cluster.Run([&](WorkerContext& ctx) {
    entries[ctx.rank()] =
        HorizontalToVertical(ctx, shards[ctx.rank()], options)
            .data.num_entries();
  });
  const uint64_t mean = data.num_nonzeros() / w;
  for (uint64_t e : entries) {
    EXPECT_NEAR(static_cast<double>(e), static_cast<double>(mean),
                0.1 * mean);
  }
}

TEST(TransformTest, StatsArePopulated) {
  const Dataset data = MakeData(400, 20);
  const auto shards = ShardRows(data, 2);
  Cluster cluster(2);
  TransformOptions options;
  std::vector<TransformStats> stats(2);
  cluster.Run([&](WorkerContext& ctx) {
    stats[ctx.rank()] =
        HorizontalToVertical(ctx, shards[ctx.rank()], options).stats;
  });
  for (const TransformStats& s : stats) {
    EXPECT_GT(s.repartition_bytes_sent, 0u);
    EXPECT_GT(s.sim_comm_seconds, 0.0);
    EXPECT_GE(s.sim_comm_seconds, s.label_broadcast_sim_seconds);
  }
}

TEST(TransformTest, SingleWorkerTransformKeepsEverything) {
  const Dataset data = MakeData(200, 10);
  Cluster cluster(1);
  TransformOptions options;
  cluster.Run([&](WorkerContext& ctx) {
    const VerticalShard v = HorizontalToVertical(ctx, data, options);
    EXPECT_EQ(v.owned_features.size(), data.num_features());
    EXPECT_EQ(v.data.num_entries(), data.num_nonzeros());
    EXPECT_EQ(v.labels, data.labels());
  });
}

}  // namespace
}  // namespace vero
